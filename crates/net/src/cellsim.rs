//! Cell-scale workload generation: M cells × many UEs, per-TTI
//! scheduling, mixed traffic, bursty/diurnal arrivals, HARQ storms —
//! and tail-latency accounting for all of it.
//!
//! The paper's capacity question (how many cores does a software eNB
//! need for N cells × 300 Mbps?) is a *tail-latency* question under
//! realistic load, not a peak-Mbps one. This module drives the
//! functional substrate the rest of the crate provides — per-TTI
//! scheduling rounds through [`crate::scheduler`] with link adaptation
//! from [`crate::amc`], HARQ retransmission behavior grounded in real
//! [`crate::harq`] soft-combining exchanges — under configurable
//! arrival processes and packet-size/transport mixes, and records
//! per-packet latency (queueing + HARQ round trips + modeled
//! processing) into the fixed-bucket histograms of [`crate::metrics`].
//!
//! Everything is deterministic from [`CellSimConfig::seed`]: arrivals,
//! channel draws, HARQ severities and the processing-time model (which
//! converts `vran-uarch` cycle counts to nanoseconds) contain no
//! wall-clock input, so two runs with the same seed produce identical
//! reports — the property the `cell_scale_smoke` benchgate suite
//! gates p50/p95/p99 on.
//!
//! ## Model notes
//!
//! * One scheduling winner per cell per TTI (single-winner TDM, as in
//!   [`crate::scheduler`]); the winner's transport blocks segment
//!   across TTIs when a packet exceeds the subframe's bit budget.
//! * HARQ retransmissions ride dedicated synchronous allocations (they
//!   do not re-enter the scheduler queue); each costs one
//!   [`HARQ_RTT_TTIS`] round trip of latency plus one more modeled
//!   processing pass. Attempt counts come from memoized *real*
//!   [`crate::harq`] exchanges at the storm's sign-flip severity, so
//!   the retransmission distribution is what the turbo decoder with
//!   chase combining actually produces, not a coin flip.
//! * Per-packet processing time is the deterministic
//!   [`crate::latency::LatencyModel`] decomposition (arrangement /
//!   SIMD calculation / scalar stages / transport), scaled by attempt
//!   count.

use crate::amc::DivergenceGuard;
use crate::harq::{HarqReceiver, HarqTransmitter};
use crate::latency::LatencyModel;
use crate::metrics::Histogram;
use crate::packet::Transport;
use crate::scheduler::{CellScheduler, Policy, UeContext};
use std::collections::{HashMap, VecDeque};
use vran_arrange::Mechanism;
use vran_phy::bits::random_bits;
use vran_phy::crc::CRC24B;
use vran_phy::llr::Llr;
use vran_phy::segmentation::Segmentation;
use vran_phy::turbo::TurboEncoder;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;
use vran_util::rng::SmallRng;

/// One LTE TTI (subframe) in nanoseconds.
pub const TTI_NS: u64 = 1_000_000;

/// TTIs a staged decode task may wait in a batch pool before its pool
/// is deadline-flushed (the modeled twin of the stage-graph runtime's
/// age bound — see [`crate::stagegraph::StageGraphConfig::flush_age`]).
pub const BATCH_DEADLINE_TTIS: u64 = 4;

/// Modeled calculation-time speedup of a full quad-in-zmm launch over
/// a serial per-block decode (the measured quad-vs-serial figure of
/// the native batch decoder on AVX-512BW).
const QUAD_CALC_SPEEDUP: f64 = 1.6;

/// Modeled calculation-time speedup of a pair-in-ymm launch.
const PAIR_CALC_SPEEDUP: f64 = 1.3;

/// Synchronous HARQ round-trip time in TTIs (LTE FDD: 8 ms between an
/// attempt and its retransmission).
pub const HARQ_RTT_TTIS: u64 = 8;

/// Code-block size of the HARQ severity oracle's real exchanges.
const HARQ_ORACLE_K: usize = 104;
/// Coded bits per oracle (re)transmission — rate ≈ 0.65 on the first
/// shot, so storm-severity flips genuinely need combining to decode.
const HARQ_ORACLE_E: usize = 160;
/// LLR magnitude of the oracle's received soft bits.
const HARQ_ORACLE_MAG: Llr = 24;
/// Decoder iterations per oracle attempt.
const HARQ_ORACLE_ITERS: usize = 6;

/// A packet arrival process: how many packets enter a cell's queues at
/// each TTI. All draws are deterministic from the generator's seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Constant mean rate (Bernoulli-fractional draw around the mean).
    Constant {
        /// Mean packet arrivals per TTI.
        mean_per_tti: f64,
    },
    /// Two-state Markov on/off source: bursts at `on_mean_per_tti`
    /// while "on", silent while "off".
    Bursty {
        /// Mean arrivals per TTI while the source is on.
        on_mean_per_tti: f64,
        /// Per-TTI probability of an on → off transition.
        p_on_to_off: f64,
        /// Per-TTI probability of an off → on transition.
        p_off_to_on: f64,
    },
    /// Diurnal load curve: the mean rate follows a triangle wave (peak
    /// and trough once per period), modeling the day/night swing of a
    /// deployed cell. A triangle (not a sinusoid) keeps the profile
    /// free of platform `libm` rounding.
    Diurnal {
        /// Mean arrivals per TTI averaged over a full period.
        mean_per_tti: f64,
        /// Peak-to-mean modulation depth in `[0, 1]`.
        depth: f64,
        /// Wave period in TTIs.
        period_ttis: u64,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrivals per TTI.
    pub fn mean_per_tti(&self) -> f64 {
        match *self {
            ArrivalProcess::Constant { mean_per_tti } => mean_per_tti,
            ArrivalProcess::Bursty {
                on_mean_per_tti,
                p_on_to_off,
                p_off_to_on,
            } => {
                // Stationary on-probability of the two-state chain.
                let duty = p_off_to_on / (p_on_to_off + p_off_to_on);
                on_mean_per_tti * duty
            }
            ArrivalProcess::Diurnal { mean_per_tti, .. } => mean_per_tti,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Constant { .. } => "constant",
            ArrivalProcess::Bursty { .. } => "bursty",
            ArrivalProcess::Diurnal { .. } => "diurnal",
        }
    }
}

/// Stateful arrival generator: an [`ArrivalProcess`] plus its RNG and
/// burst state.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: SmallRng,
    on: bool,
}

impl ArrivalGen {
    /// New generator; identical `(process, seed)` pairs produce
    /// identical arrival schedules.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        Self {
            process,
            rng: SmallRng::seed_from_u64(seed),
            on: true,
        }
    }

    /// The process being generated.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Integer draw with expectation `rate`: the integer part always
    /// arrives, the fractional part arrives with matching probability.
    fn fractional_count(rate: f64, rng: &mut SmallRng) -> u32 {
        let base = rate.max(0.0);
        let whole = base.floor();
        let extra = u32::from(rng.gen_f64() < base - whole);
        whole as u32 + extra
    }

    /// Packet arrivals at `tti`. Advances burst state and RNG.
    pub fn draw(&mut self, tti: u64) -> u32 {
        match self.process {
            ArrivalProcess::Constant { mean_per_tti } => {
                Self::fractional_count(mean_per_tti, &mut self.rng)
            }
            ArrivalProcess::Bursty {
                on_mean_per_tti,
                p_on_to_off,
                p_off_to_on,
            } => {
                // Draw arrivals for the current state, then transition —
                // one uniform per TTI either way keeps the stream aligned.
                let n = if self.on {
                    Self::fractional_count(on_mean_per_tti, &mut self.rng)
                } else {
                    0
                };
                let u = self.rng.gen_f64();
                if self.on {
                    if u < p_on_to_off {
                        self.on = false;
                    }
                } else if u < p_off_to_on {
                    self.on = true;
                }
                n
            }
            ArrivalProcess::Diurnal {
                mean_per_tti,
                depth,
                period_ttis,
            } => {
                let period = period_ttis.max(1);
                let phase = (tti % period) as f64 / period as f64;
                // Symmetric triangle wave in [-1, 1] with exact zero mean.
                let tri = if phase < 0.25 {
                    4.0 * phase
                } else if phase < 0.75 {
                    2.0 - 4.0 * phase
                } else {
                    4.0 * phase - 4.0
                };
                let rate = mean_per_tti * (1.0 + depth.clamp(0.0, 1.0) * tri);
                Self::fractional_count(rate, &mut self.rng)
            }
        }
    }
}

/// One weighted entry of a [`TrafficMix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficClass {
    /// Transport of packets in this class.
    pub transport: Transport,
    /// Wire length in bytes.
    pub wire_len: usize,
    /// Relative draw weight.
    pub weight: u32,
}

/// A named distribution over packet sizes and transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMix {
    name: &'static str,
    classes: Vec<TrafficClass>,
    total_weight: u64,
}

impl TrafficMix {
    fn build(name: &'static str, classes: Vec<TrafficClass>) -> Self {
        assert!(!classes.is_empty(), "a mix needs at least one class");
        assert!(classes.iter().all(|c| c.weight > 0), "weights must be > 0");
        let total_weight = classes.iter().map(|c| c.weight as u64).sum();
        Self {
            name,
            classes,
            total_weight,
        }
    }

    /// The paper's workload: UDP and TCP at every size of the
    /// 64 B–1400 B sweep (Figure 13), uniformly weighted.
    pub fn paper_sweep() -> Self {
        let mut classes = Vec::new();
        for transport in [Transport::Udp, Transport::Tcp] {
            for wire_len in [64usize, 128, 300, 600, 900, 1200, 1400] {
                classes.push(TrafficClass {
                    transport,
                    wire_len,
                    weight: 1,
                });
            }
        }
        Self::build("paper_sweep", classes)
    }

    /// Classic IMIX (7:4:1 small/medium/large), UDP.
    pub fn imix() -> Self {
        Self::build(
            "imix",
            vec![
                TrafficClass {
                    transport: Transport::Udp,
                    wire_len: 64,
                    weight: 7,
                },
                TrafficClass {
                    transport: Transport::Udp,
                    wire_len: 570,
                    weight: 4,
                },
                TrafficClass {
                    transport: Transport::Udp,
                    wire_len: 1400,
                    weight: 1,
                },
            ],
        )
    }

    /// Small-packet voice-like load: 64 B and 128 B UDP.
    pub fn voip() -> Self {
        Self::build(
            "voip",
            vec![
                TrafficClass {
                    transport: Transport::Udp,
                    wire_len: 64,
                    weight: 3,
                },
                TrafficClass {
                    transport: Transport::Udp,
                    wire_len: 128,
                    weight: 1,
                },
            ],
        )
    }

    /// Mix name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The weighted classes.
    pub fn classes(&self) -> &[TrafficClass] {
        &self.classes
    }

    /// Mean wire length in bytes under the weights.
    pub fn mean_wire_len(&self) -> f64 {
        let weighted: f64 = self
            .classes
            .iter()
            .map(|c| c.wire_len as f64 * c.weight as f64)
            .sum();
        weighted / self.total_weight as f64
    }

    /// Draw one `(transport, wire_len)` pair.
    pub fn draw(&self, rng: &mut SmallRng) -> (Transport, usize) {
        let mut pick = rng.next_u64() % self.total_weight;
        for c in &self.classes {
            if pick < c.weight as u64 {
                return (c.transport, c.wire_len);
            }
            pick -= c.weight as u64;
        }
        unreachable!("weights sum to total_weight");
    }
}

/// A HARQ retransmission storm: a TTI window in which every served
/// packet's soft bits arrive with `1/flip_every` of their signs
/// flipped, forcing real chase-combining retransmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarqStorm {
    /// First TTI of the storm.
    pub start_tti: u64,
    /// Storm length in TTIs.
    pub len_ttis: u64,
    /// Sign-flip spacing during the storm (smaller = harsher; must be
    /// ≥ 2).
    pub flip_every: usize,
}

impl HarqStorm {
    /// Whether `tti` falls inside the storm window.
    pub fn covers(&self, tti: u64) -> bool {
        tti >= self.start_tti && tti < self.start_tti + self.len_ttis
    }
}

/// Memoized real-HARQ severity oracle: attempts needed to decode at a
/// given sign-flip severity and phase, measured by running an actual
/// [`crate::harq`] transmitter/receiver exchange (turbo decode with
/// chase combining over the rv schedule) once per `(flip_every,
/// phase)` and caching the outcome. `0` means the rv schedule was
/// exhausted without a clean CRC — the packet is lost.
#[derive(Debug, Default)]
pub struct HarqOracle {
    cache: HashMap<(usize, usize), u32>,
}

impl HarqOracle {
    /// Fresh oracle with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to decode at severity `flip_every`, phase `phase`
    /// (`1..=4`), or `0` on residual failure.
    pub fn attempts(&mut self, flip_every: usize, phase: usize) -> u32 {
        assert!(flip_every >= 2, "flip_every < 2 flips everything");
        *self
            .cache
            .entry((flip_every, phase))
            .or_insert_with(|| Self::run_exchange(flip_every, phase))
    }

    /// Cached severity points (diagnostic).
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    fn run_exchange(flip_every: usize, phase: usize) -> u32 {
        let payload = random_bits(HARQ_ORACLE_K - 24, 11);
        let block = CRC24B.attach(&payload);
        let cw = TurboEncoder::new(HARQ_ORACLE_K).encode(&block);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rx = HarqReceiver::new(HARQ_ORACLE_K, HARQ_ORACLE_ITERS);
        let mut attempt = 0u32;
        while let Some((rv, coded)) = tx.next_transmission(HARQ_ORACLE_E) {
            attempt += 1;
            // Vary the flip phase per attempt so retransmissions carry
            // damage at different positions, as fading would.
            let p = phase + attempt as usize * 3;
            let llrs: Vec<Llr> = coded
                .iter()
                .enumerate()
                .map(|(i, &b)| {
                    let v = if b == 0 {
                        HARQ_ORACLE_MAG
                    } else {
                        -HARQ_ORACLE_MAG
                    };
                    if (i + p).is_multiple_of(flip_every) {
                        -v
                    } else {
                        v
                    }
                })
                .collect();
            let out = rx.receive(&llrs, rv).expect("rv from the schedule");
            if out.ok {
                return attempt;
            }
        }
        0
    }
}

/// Configuration of one cell-scale run.
#[derive(Debug, Clone)]
pub struct CellSimConfig {
    /// Preset label carried into reports.
    pub name: &'static str,
    /// Number of cells (independent schedulers, queues and channels).
    pub cells: usize,
    /// Active UEs per cell.
    pub ues_per_cell: usize,
    /// Simulated TTIs (1 ms each).
    pub ttis: u64,
    /// Per-cell aggregate arrival process.
    pub arrivals: ArrivalProcess,
    /// Packet size / transport distribution.
    pub mix: TrafficMix,
    /// Scheduling policy.
    pub policy: Policy,
    /// Optional HARQ retransmission storm.
    pub storm: Option<HarqStorm>,
    /// Register width of the modeled PHY kernels.
    pub width: RegWidth,
    /// Arrangement mechanism of the modeled PHY kernels.
    pub mechanism: Mechanism,
    /// Turbo iterations per code block in the processing-time model.
    pub decoder_iterations: usize,
    /// Model the out-of-order stage-graph runtime: served packets'
    /// code blocks pool by K across packets (and cells — one eNB PHY
    /// worker), launch as quad/pair batches with the measured
    /// calculation-time speedups, and record their latency when the
    /// last block launches (adding the batch-formation wait to the
    /// total). Off reproduces the per-packet serial model.
    pub stage_graph: bool,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl CellSimConfig {
    /// The deterministic CI smoke preset: 2 cells × 48 UEs × 1200
    /// TTIs of bursty paper-sweep traffic with a mid-run HARQ storm —
    /// small enough for a CI runner, loaded enough that queueing and
    /// retransmission tails are non-trivial.
    pub fn smoke(seed: u64) -> Self {
        Self {
            name: "smoke",
            cells: 2,
            ues_per_cell: 48,
            ttis: 1200,
            arrivals: ArrivalProcess::Bursty {
                on_mean_per_tti: 1.6,
                p_on_to_off: 0.02,
                p_off_to_on: 0.02,
            },
            mix: TrafficMix::paper_sweep(),
            policy: Policy::ProportionalFair,
            storm: Some(HarqStorm {
                start_tti: 500,
                len_ttis: 150,
                flip_every: 5,
            }),
            width: RegWidth::Avx512,
            mechanism: Mechanism::Apcm(vran_arrange::ApcmVariant::Shuffle),
            decoder_iterations: 5,
            stage_graph: true,
            seed,
        }
    }

    /// The full-scale preset at `cells` cells: 1024 UEs per cell under
    /// a diurnal load curve with a storm at the peak — the workload the
    /// cores-per-(cells × 300 Mbps) capacity table is computed from.
    pub fn full(cells: usize, seed: u64) -> Self {
        Self {
            name: "full",
            cells,
            ues_per_cell: 1024,
            ttis: 1500,
            // Peak rate (mean × (1 + depth)) stays just under the
            // single-winner subframe capacity of ~5.5 kbit/TTI at this
            // mix's ~5.2 kbit mean packet, so the diurnal peak loads
            // the cell hard without unbounded queue growth — tails
            // come from bursts, the storm and HARQ, not saturation.
            arrivals: ArrivalProcess::Diurnal {
                mean_per_tti: 0.65,
                depth: 0.5,
                period_ttis: 1000,
            },
            mix: TrafficMix::paper_sweep(),
            policy: Policy::ProportionalFair,
            storm: Some(HarqStorm {
                start_tti: 600,
                len_ttis: 200,
                flip_every: 5,
            }),
            width: RegWidth::Avx512,
            mechanism: Mechanism::Apcm(vran_arrange::ApcmVariant::Shuffle),
            decoder_iterations: 5,
            stage_graph: true,
            seed,
        }
    }
}

/// Latency decomposition histograms of one run. Queue and total use
/// the wide grid (TTIs and HARQ round trips run to seconds under
/// storm backlog); the processing-stage histograms use the per-packet
/// grid.
#[derive(Debug)]
pub struct LatencyBreakdown {
    /// End-to-end per-packet latency (queue + HARQ + processing).
    pub total: Histogram,
    /// Queueing delay (arrival TTI → first-serve TTI).
    pub queue: Histogram,
    /// HARQ retransmission delay (round trips after the first attempt).
    pub harq: Histogram,
    /// Modeled processing time, all attempts.
    pub proc: Histogram,
    /// Processing share: the data-arrangement stage.
    pub arrange: Histogram,
    /// Processing share: SIMD max-log-MAP calculation.
    pub calc: Histogram,
    /// Processing share: scalar pipeline stages.
    pub other: Histogram,
    /// Batch-formation wait: service completion → last decode-block
    /// launch under the stage-graph model (always zero when
    /// [`CellSimConfig::stage_graph`] is off). Wide grid: pools flush
    /// within [`BATCH_DEADLINE_TTIS`] TTIs.
    pub batch: Histogram,
}

impl LatencyBreakdown {
    fn new() -> Self {
        Self {
            total: Histogram::latency_wide_ns(),
            queue: Histogram::latency_wide_ns(),
            harq: Histogram::latency_wide_ns(),
            proc: Histogram::latency_ns(),
            arrange: Histogram::latency_ns(),
            calc: Histogram::latency_ns(),
            other: Histogram::latency_ns(),
            batch: Histogram::latency_wide_ns(),
        }
    }
}

/// Outcome of one cell-scale run.
#[derive(Debug)]
pub struct CellSimReport {
    /// The configuration's preset label.
    pub name: &'static str,
    /// Cells simulated.
    pub cells: usize,
    /// UEs per cell.
    pub ues_per_cell: usize,
    /// TTIs simulated.
    pub ttis: u64,
    /// Packets that arrived.
    pub offered_packets: u64,
    /// Wire bits that arrived.
    pub offered_bits: u64,
    /// Packets served (decoded clean, possibly after retransmission).
    pub served_packets: u64,
    /// Wire bits of served packets.
    pub served_bits: u64,
    /// Packets lost after exhausting the rv schedule.
    pub dropped_packets: u64,
    /// Packets still queued when the run ended.
    pub backlog_packets: u64,
    /// HARQ retransmissions beyond first attempts.
    pub harq_retransmissions: u64,
    /// Subframes in which some cell scheduled a winner.
    pub scheduled_ttis: u64,
    /// Subframes in which a cell had nothing to schedule.
    pub idle_ttis: u64,
    /// Modeled processing nanoseconds summed over all attempts.
    pub proc_ns_total: u64,
    /// Jain fairness index over per-UE scheduler-served bits.
    pub ue_fairness: f64,
    /// Code blocks that launched in a full quad-in-zmm batch.
    pub batch_quad_blocks: u64,
    /// Code blocks that launched in a pair-in-ymm batch.
    pub batch_pair_blocks: u64,
    /// Code blocks that launched alone.
    pub batch_single_blocks: u64,
    /// Pool flushes because four same-K blocks filled the lanes.
    pub batch_flush_lanes_full: u64,
    /// Pool flushes because the oldest block aged past
    /// [`BATCH_DEADLINE_TTIS`].
    pub batch_flush_deadline: u64,
    /// Pool flushes at end-of-run drain.
    pub batch_flush_drain: u64,
    /// Divergence-guard MCS step-downs across all cells
    /// ([`crate::amc::DivergenceGuard`]).
    pub amc_stepdowns: u64,
    /// Latency histograms.
    pub latency: LatencyBreakdown,
}

impl CellSimReport {
    /// Simulated duration in seconds.
    pub fn sim_seconds(&self) -> f64 {
        self.ttis as f64 * TTI_NS as f64 * 1e-9
    }

    /// Offered load in Mbps over the simulated window.
    pub fn offered_mbps(&self) -> f64 {
        self.offered_bits as f64 / self.sim_seconds() / 1e6
    }

    /// Served goodput in Mbps over the simulated window.
    pub fn served_mbps(&self) -> f64 {
        self.served_bits as f64 / self.sim_seconds() / 1e6
    }

    /// Average PHY core-equivalents consumed: modeled processing time
    /// divided by simulated wall time.
    pub fn core_equivalents(&self) -> f64 {
        self.proc_ns_total as f64 / (self.ttis as f64 * TTI_NS as f64)
    }

    /// Cores needed to sustain `target_mbps` of this traffic shape,
    /// scaling the observed processing-per-served-bit linearly — the
    /// paper's Figure 16 "cores required" question answered under a
    /// scheduled multi-cell mix instead of one saturated stream.
    pub fn cores_for(&self, target_mbps: f64) -> f64 {
        let served = self.served_mbps();
        if served <= 0.0 {
            return f64::INFINITY;
        }
        self.core_equivalents() * target_mbps / served
    }

    /// Fraction of decode blocks that launched in a full quad — the
    /// modeled zmm lane-occupancy figure. 0.0 when nothing decoded
    /// (or the stage-graph model is off).
    pub fn batch_lane_occupancy(&self) -> f64 {
        let quad = self.batch_quad_blocks as f64;
        let total = quad + self.batch_pair_blocks as f64 + self.batch_single_blocks as f64;
        if total == 0.0 {
            0.0
        } else {
            quad / total
        }
    }

    /// Flat, insertion-ordered metric snapshot with benchgate-ready
    /// names: counts (`.count` / `_bits`, exact tolerance), latency
    /// percentiles (`.p50_ns`/`.p95_ns`/`.p99_ns`, percentile
    /// tolerance) and the fairness ratio.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("offered.count".into(), self.offered_packets as f64),
            ("served.count".into(), self.served_packets as f64),
            ("dropped.count".into(), self.dropped_packets as f64),
            ("backlog.count".into(), self.backlog_packets as f64),
            ("harq_retx.count".into(), self.harq_retransmissions as f64),
            ("scheduled_ttis.count".into(), self.scheduled_ttis as f64),
            ("idle_ttis.count".into(), self.idle_ttis as f64),
            ("served_bits".into(), self.served_bits as f64),
            ("offered_bits".into(), self.offered_bits as f64),
            ("ue.fairness.ratio".into(), self.ue_fairness),
            (
                "batch.lane_occupancy.ratio".into(),
                self.batch_lane_occupancy(),
            ),
            (
                "batch.quad_blocks.count".into(),
                self.batch_quad_blocks as f64,
            ),
            (
                "batch.pair_blocks.count".into(),
                self.batch_pair_blocks as f64,
            ),
            (
                "batch.single_blocks.count".into(),
                self.batch_single_blocks as f64,
            ),
            (
                "batch.flush.lanes_full.count".into(),
                self.batch_flush_lanes_full as f64,
            ),
            (
                "batch.flush.deadline.count".into(),
                self.batch_flush_deadline as f64,
            ),
            (
                "batch.flush.drain.count".into(),
                self.batch_flush_drain as f64,
            ),
            ("amc_stepdowns.count".into(), self.amc_stepdowns as f64),
        ];
        for (prefix, h) in [
            ("latency.total", &self.latency.total),
            ("latency.queue", &self.latency.queue),
            ("latency.harq", &self.latency.harq),
            ("latency.proc", &self.latency.proc),
            ("latency.arrange", &self.latency.arrange),
            ("latency.calc", &self.latency.calc),
            ("latency.batch", &self.latency.batch),
        ] {
            out.push((format!("{prefix}.p50_ns"), h.quantile_upper(0.50) as f64));
            out.push((format!("{prefix}.p95_ns"), h.quantile_upper(0.95) as f64));
            out.push((format!("{prefix}.p99_ns"), h.quantile_upper(0.99) as f64));
            out.push((format!("{prefix}.mean_ns"), h.mean()));
        }
        out
    }
}

/// One queued packet.
#[derive(Debug, Clone, Copy)]
struct PendingPacket {
    arrival_tti: u64,
    transport: Transport,
    wire_len: usize,
}

/// Per-UE queue with cross-TTI segmentation state for the head packet.
#[derive(Debug, Default)]
struct UeQueue {
    q: VecDeque<PendingPacket>,
    /// Bits of the head packet already granted in earlier TTIs.
    head_served_bits: u64,
}

/// Per-cell state.
struct Cell {
    sched: CellScheduler,
    queues: Vec<UeQueue>,
    arrivals: ArrivalGen,
    traffic_rng: SmallRng,
    /// Outer-loop link adaptation wrapped in the divergence guard:
    /// sustained decode failure steps the effective MCS down a table
    /// row at a time (the AMC half of the degradation ladder).
    outer_loop: DivergenceGuard,
    eligible: Vec<bool>,
}

/// A served packet whose latency record is deferred until its last
/// decode block launches from a batch pool (stage-graph model).
#[derive(Debug)]
struct PendingDecode {
    queue_ns: u64,
    harq_ns: u64,
    arr_ns: u64,
    other_ns: u64,
    /// Accumulated as blocks launch (per-block calc share divided by
    /// the launch group's speedup).
    calc_ns: u64,
    /// Blocks still waiting in some pool.
    remaining: usize,
    /// TTI the packet finished serving (batch wait baseline).
    complete_tti: u64,
}

/// One staged decode block in the modeled batch former.
#[derive(Debug)]
struct ModelTask {
    owner: u64,
    /// Serial per-block calculation-time share (before speedup).
    calc_share_ns: u64,
    staged_tti: u64,
}

/// A same-K pool of the modeled batch former (insertion-ordered across
/// Ks for determinism).
#[derive(Debug)]
struct ModelPool {
    k: usize,
    tasks: Vec<ModelTask>,
}

/// The cell-scale simulator.
pub struct CellSim {
    cfg: CellSimConfig,
    cells: Vec<Cell>,
    model: LatencyModel,
    oracle: HarqOracle,
    /// `(transport, wire_len) → (proc_ns, arrange_ns, calc_ns,
    /// other_ns)` per attempt, memoized from the latency model.
    proc_cache: HashMap<(bool, usize), (u64, u64, u64, u64)>,
    /// `wire_len → code-block K list`, memoized from the segmentation
    /// plan (stage-graph model).
    seg_cache: HashMap<usize, Vec<usize>>,
    /// Served packets awaiting decode-block launches, by id.
    pending: HashMap<u64, PendingDecode>,
    next_pending: u64,
    /// The modeled batch former: one pool per K, shared across cells
    /// (one eNB PHY worker pools all of its cells' blocks).
    pools: Vec<ModelPool>,
    /// Chaos hook: extra dB subtracted from every cell's scheduler SNR
    /// offset (models a fleet-wide channel collapse mid-run).
    chaos_snr_offset_db: f32,
}

impl CellSim {
    /// Build a simulator from a configuration.
    pub fn new(cfg: CellSimConfig) -> Self {
        assert!(cfg.cells >= 1 && cfg.ues_per_cell >= 1 && cfg.ttis >= 1);
        assert!(
            cfg.ues_per_cell <= u16::MAX as usize,
            "UE ids are u16 per cell"
        );
        let cells = (0..cfg.cells)
            .map(|c| {
                let cell_seed = cfg
                    .seed
                    .wrapping_add((c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut ue_rng = SmallRng::seed_from_u64(cell_seed);
                // Mean SNR spread from cell edge to cell center.
                let ues: Vec<UeContext> = (0..cfg.ues_per_cell)
                    .map(|u| UeContext::new(u as u16, ue_rng.gen_range_f32(4.0, 24.0)))
                    .collect();
                Cell {
                    sched: CellScheduler::new(ues, cfg.policy, cell_seed ^ 0x5ce1),
                    queues: (0..cfg.ues_per_cell).map(|_| UeQueue::default()).collect(),
                    arrivals: ArrivalGen::new(cfg.arrivals, cell_seed ^ 0xa44),
                    traffic_rng: SmallRng::seed_from_u64(cell_seed ^ 0x7aff1c),
                    outer_loop: DivergenceGuard::default(),
                    eligible: vec![false; cfg.ues_per_cell],
                }
            })
            .collect();
        let model = LatencyModel::new(CoreConfig::beefy(), cfg.decoder_iterations);
        Self {
            cfg,
            cells,
            model,
            oracle: HarqOracle::new(),
            proc_cache: HashMap::new(),
            seg_cache: HashMap::new(),
            pending: HashMap::new(),
            next_pending: 0,
            pools: Vec::new(),
            chaos_snr_offset_db: 0.0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CellSimConfig {
        &self.cfg
    }

    /// Chaos hook: replace the HARQ storm window mid-run (the chaos
    /// scheduler phases storms in and out of a stepped simulation).
    pub fn set_storm(&mut self, storm: Option<HarqStorm>) {
        self.cfg.storm = storm;
    }

    /// Chaos hook: add `db` (typically negative) to every cell's
    /// scheduler SNR offset from the next TTI on — a fleet-wide SNR
    /// collapse. The AMC outer loop and divergence guard see its
    /// decode consequences and adapt on their own.
    pub fn set_chaos_snr_offset_db(&mut self, db: f32) {
        self.chaos_snr_offset_db = db;
    }

    /// Total divergence-guard MCS step-downs across all cells so far.
    pub fn amc_stepdowns(&self) -> u64 {
        self.cells.iter().map(|c| c.outer_loop.stepdowns()).sum()
    }

    /// Modeled per-attempt processing decomposition in nanoseconds.
    fn proc_ns(&mut self, transport: Transport, wire_len: usize) -> (u64, u64, u64, u64) {
        let key = (matches!(transport, Transport::Tcp), wire_len);
        if let Some(&v) = self.proc_cache.get(&key) {
            return v;
        }
        let t = self
            .model
            .packet_time(self.cfg.width, self.cfg.mechanism, transport, wire_len);
        let v = (
            (t.total_us() * 1000.0) as u64,
            (t.arrangement_us * 1000.0) as u64,
            (t.calculation_us * 1000.0) as u64,
            ((t.other_us + t.transport_us) * 1000.0) as u64,
        );
        self.proc_cache.insert(key, v);
        v
    }

    /// Code-block sizes (K) a packet of `wire_len` bytes segments
    /// into, mirroring the real pipeline's transport-block build
    /// (L2 overhead + CRC24A, then the 3GPP segmentation plan).
    fn block_ks(&mut self, wire_len: usize) -> &[usize] {
        self.seg_cache.entry(wire_len).or_insert_with(|| {
            let bits = (wire_len + crate::l2::L2_OVERHEAD) * 8 + 24;
            let seg = Segmentation::plan(bits);
            (0..seg.c).map(|i| seg.k_of(i)).collect()
        })
    }

    /// Stage one decode block into its K pool; a filled pool launches
    /// a quad immediately.
    fn stage_block(
        &mut self,
        k: usize,
        owner: u64,
        calc_share_ns: u64,
        tti: u64,
        report: &mut CellSimReport,
    ) {
        let pi = match self.pools.iter().position(|p| p.k == k) {
            Some(i) => i,
            None => {
                self.pools.push(ModelPool {
                    k,
                    tasks: Vec::with_capacity(4),
                });
                self.pools.len() - 1
            }
        };
        self.pools[pi].tasks.push(ModelTask {
            owner,
            calc_share_ns,
            staged_tti: tti,
        });
        if self.pools[pi].tasks.len() >= 4 {
            report.batch_flush_lanes_full += 1;
            self.launch_pool(pi, tti, report);
        }
    }

    /// Launch everything in pool `pi` (quads, then a pair, then a
    /// single), crediting each block's calculation time at its launch
    /// group's speedup, and recording the deferred latency of every
    /// packet whose last block this launch decoded.
    fn launch_pool(&mut self, pi: usize, tti: u64, report: &mut CellSimReport) {
        let tasks = std::mem::take(&mut self.pools[pi].tasks);
        let n = tasks.len();
        for (j, t) in tasks.into_iter().enumerate() {
            // Position j's launch group under quad-then-pair-then-
            // single chunking of n tasks.
            let left_after_quads = n - (n / 4) * 4;
            let speedup = if j < (n / 4) * 4 {
                report.batch_quad_blocks += 1;
                QUAD_CALC_SPEEDUP
            } else if left_after_quads >= 2 && j < n - (left_after_quads % 2) {
                report.batch_pair_blocks += 1;
                PAIR_CALC_SPEEDUP
            } else {
                report.batch_single_blocks += 1;
                1.0
            };
            let calc = (t.calc_share_ns as f64 / speedup) as u64;
            report.proc_ns_total += calc;
            let done = {
                let p = self.pending.get_mut(&t.owner).expect("owner pending");
                p.calc_ns += calc;
                p.remaining -= 1;
                p.remaining == 0
            };
            if done {
                let p = self.pending.remove(&t.owner).expect("present");
                let wait_ns = tti.saturating_sub(p.complete_tti) * TTI_NS;
                let proc_ns = p.arr_ns + p.other_ns + p.calc_ns;
                let lat = &report.latency;
                lat.queue.record(p.queue_ns);
                lat.harq.record(p.harq_ns);
                lat.proc.record(proc_ns);
                lat.arrange.record(p.arr_ns);
                lat.calc.record(p.calc_ns);
                lat.other.record(p.other_ns);
                lat.batch.record(wait_ns);
                lat.total.record(p.queue_ns + p.harq_ns + proc_ns + wait_ns);
            }
        }
    }

    /// Deadline-flush pools whose oldest block aged past
    /// [`BATCH_DEADLINE_TTIS`] (called once per TTI).
    fn flush_aged_pools(&mut self, tti: u64, report: &mut CellSimReport) {
        for pi in 0..self.pools.len() {
            let due = self.pools[pi]
                .tasks
                .first()
                .is_some_and(|t| tti.saturating_sub(t.staged_tti) >= BATCH_DEADLINE_TTIS);
            if due {
                report.batch_flush_deadline += 1;
                self.launch_pool(pi, tti, report);
            }
        }
    }

    /// Run the configured number of TTIs and produce the report.
    pub fn run(mut self) -> CellSimReport {
        let mut report = self.begin_report();
        for tti in 0..self.cfg.ttis {
            self.step(tti, &mut report);
        }
        self.finish_report(&mut report);
        report
    }

    /// Fresh zeroed report carrying this simulation's shape. The
    /// stepped API (`begin_report` / [`Self::step`] /
    /// [`Self::finish_report`]) lets a driver interleave measurement
    /// windows and mid-run reconfiguration ([`Self::set_storm`],
    /// [`Self::set_chaos_snr_offset_db`]) — the chaos scheduler's
    /// recovery clock is built on it. `run()` composes exactly these
    /// three calls, so a stepped run with one report is byte-identical
    /// to `run()`.
    pub fn begin_report(&self) -> CellSimReport {
        CellSimReport {
            name: self.cfg.name,
            cells: self.cfg.cells,
            ues_per_cell: self.cfg.ues_per_cell,
            ttis: self.cfg.ttis,
            offered_packets: 0,
            offered_bits: 0,
            served_packets: 0,
            served_bits: 0,
            dropped_packets: 0,
            backlog_packets: 0,
            harq_retransmissions: 0,
            scheduled_ttis: 0,
            idle_ttis: 0,
            proc_ns_total: 0,
            ue_fairness: 0.0,
            batch_quad_blocks: 0,
            batch_pair_blocks: 0,
            batch_single_blocks: 0,
            batch_flush_lanes_full: 0,
            batch_flush_deadline: 0,
            batch_flush_drain: 0,
            amc_stepdowns: 0,
            latency: LatencyBreakdown::new(),
        }
    }

    /// Simulate one TTI, recording into `report` (which need not be
    /// the same report across steps — a windowed driver hands a fresh
    /// one per measurement window).
    pub fn step(&mut self, tti: u64, report: &mut CellSimReport) {
        for c in 0..self.cells.len() {
            self.tick_cell(c, tti, report);
        }
        if self.cfg.stage_graph {
            self.flush_aged_pools(tti, report);
        }
    }

    /// End-of-run accounting: drain partial pools, count the backlog,
    /// compute fairness, harvest AMC step-downs. `end_tti` is the TTI
    /// the drain is charged to ([`Self::run`] uses `cfg.ttis`).
    pub fn finish_report(&mut self, report: &mut CellSimReport) {
        let end_tti = self.cfg.ttis;
        // End-of-run drain: launch every partial pool so all served
        // packets record their latency.
        if self.cfg.stage_graph {
            for pi in 0..self.pools.len() {
                if !self.pools[pi].tasks.is_empty() {
                    report.batch_flush_drain += 1;
                    self.launch_pool(pi, end_tti, report);
                }
            }
            debug_assert!(self.pending.is_empty(), "drain retires everything");
        }

        // Backlog: whatever is still queued.
        report.backlog_packets = self
            .cells
            .iter()
            .flat_map(|c| c.queues.iter())
            .map(|q| q.q.len() as u64)
            .sum();

        // Jain fairness over scheduler-served bits across every UE.
        let served: Vec<f64> = self
            .cells
            .iter()
            .flat_map(|c| c.sched.ues().iter())
            .map(|u| u.served_bits as f64)
            .collect();
        let sum: f64 = served.iter().sum();
        let sumsq: f64 = served.iter().map(|x| x * x).sum();
        report.ue_fairness = if sumsq > 0.0 {
            sum * sum / (served.len() as f64 * sumsq)
        } else {
            0.0
        };
        report.amc_stepdowns = self.amc_stepdowns();
    }

    /// One cell's subframe: arrivals, a scheduling round, service of
    /// the winner's queue, HARQ resolution of completed packets.
    fn tick_cell(&mut self, c: usize, tti: u64, report: &mut CellSimReport) {
        // Arrivals land before the scheduling round (they may be
        // served in the same TTI with zero queueing delay).
        let n_arrivals = self.cells[c].arrivals.draw(tti);
        for _ in 0..n_arrivals {
            let cell = &mut self.cells[c];
            let ue = cell.traffic_rng.gen_range_usize(0, cell.queues.len());
            let (transport, wire_len) = self.cfg.mix.draw(&mut cell.traffic_rng);
            cell.queues[ue].q.push_back(PendingPacket {
                arrival_tti: tti,
                transport,
                wire_len,
            });
            report.offered_packets += 1;
            report.offered_bits += wire_len as u64 * 8;
        }

        // Link adaptation feedback, then the scheduling round over
        // backlogged UEs only.
        let cell = &mut self.cells[c];
        let offset = cell.outer_loop.offset_db() + self.chaos_snr_offset_db;
        cell.sched.set_snr_offset_db(offset);
        for (e, q) in cell.eligible.iter_mut().zip(&cell.queues) {
            *e = !q.q.is_empty();
        }
        let eligible = std::mem::take(&mut cell.eligible);
        let round = cell.sched.tick_filtered(&eligible);
        self.cells[c].eligible = eligible;
        let Some(round) = round else {
            report.idle_ttis += 1;
            return;
        };
        report.scheduled_ttis += 1;

        // Serve the winner's queue within this subframe's bit budget;
        // packets larger than the budget segment across TTIs.
        let winner = round.ue as usize;
        let mut budget = round.bits;
        let mut completed: Vec<PendingPacket> = Vec::new();
        {
            let uq = &mut self.cells[c].queues[winner];
            while budget > 0 {
                let Some(head) = uq.q.front() else { break };
                let need = head.wire_len as u64 * 8 - uq.head_served_bits;
                if budget >= need {
                    budget -= need;
                    uq.head_served_bits = 0;
                    completed.push(uq.q.pop_front().expect("front exists"));
                } else {
                    uq.head_served_bits += budget;
                    budget = 0;
                }
            }
        }

        // HARQ resolution and latency accounting per completed packet.
        let storm_flip = self
            .cfg
            .storm
            .filter(|s| s.covers(tti))
            .map(|s| s.flip_every);
        for pkt in completed {
            let attempts = match storm_flip {
                None => 1,
                Some(flip_every) => {
                    let phase = self.cells[c]
                        .traffic_rng
                        .gen_range_usize(0, flip_every.max(2));
                    self.oracle.attempts(flip_every, phase)
                }
            };
            self.cells[c].outer_loop.report(attempts == 1);

            let (proc1, arr1, calc1, other1) = self.proc_ns(pkt.transport, pkt.wire_len);
            if attempts == 0 {
                // rv schedule exhausted: all four attempts burned CPU,
                // but the packet is lost and records no latency.
                report.dropped_packets += 1;
                report.harq_retransmissions += 3;
                report.proc_ns_total += proc1 * 4;
                continue;
            }
            let retx = attempts as u64 - 1;
            report.served_packets += 1;
            report.served_bits += pkt.wire_len as u64 * 8;
            report.harq_retransmissions += retx;

            let queue_ns = (tti - pkt.arrival_tti) * TTI_NS;
            let harq_ns = retx * HARQ_RTT_TTIS * TTI_NS;
            if self.cfg.stage_graph {
                // Stage-graph model: non-calc stages are charged now;
                // each code block's calculation share is charged when
                // its batch launches (at that group's speedup), and
                // the latency record is deferred until the last block
                // launches.
                let ks: Vec<usize> = self.block_ks(pkt.wire_len).to_vec();
                let arr_ns = arr1 * attempts as u64;
                let other_ns = other1 * attempts as u64;
                let calc_share = calc1 * attempts as u64 / ks.len() as u64;
                report.proc_ns_total += arr_ns + other_ns;
                let id = self.next_pending;
                self.next_pending += 1;
                self.pending.insert(
                    id,
                    PendingDecode {
                        queue_ns,
                        harq_ns,
                        arr_ns,
                        other_ns,
                        calc_ns: 0,
                        remaining: ks.len(),
                        complete_tti: tti,
                    },
                );
                for k in ks {
                    self.stage_block(k, id, calc_share, tti, report);
                }
            } else {
                report.proc_ns_total += proc1 * attempts as u64;
                let proc_ns = proc1 * attempts as u64;
                let lat = &report.latency;
                lat.queue.record(queue_ns);
                lat.harq.record(harq_ns);
                lat.proc.record(proc_ns);
                lat.arrange.record(arr1 * attempts as u64);
                lat.calc.record(calc1 * attempts as u64);
                lat.other.record(other1 * attempts as u64);
                lat.batch.record(0);
                lat.total.record(queue_ns + harq_ns + proc_ns);
            }
        }
    }
}

/// Convenience: build, run and report in one call.
pub fn run_cell_sim(cfg: CellSimConfig) -> CellSimReport {
    CellSim::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_preset_is_deterministic() {
        let a = run_cell_sim(CellSimConfig::smoke(7)).snapshot();
        let b = run_cell_sim(CellSimConfig::smoke(7)).snapshot();
        assert_eq!(a, b, "same seed must reproduce byte-identically");
        let c = run_cell_sim(CellSimConfig::smoke(8)).snapshot();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn packet_conservation_holds() {
        let r = run_cell_sim(CellSimConfig::smoke(1));
        assert_eq!(
            r.offered_packets,
            r.served_packets + r.dropped_packets + r.backlog_packets,
            "every offered packet is served, dropped or still queued"
        );
        assert!(r.served_packets > 0, "the smoke preset must serve traffic");
        assert_eq!(r.latency.total.count(), r.served_packets);
        assert_eq!(r.scheduled_ttis + r.idle_ttis, r.ttis * r.cells as u64);
    }

    #[test]
    fn smoke_preset_exercises_queueing_and_harq_tails() {
        let r = run_cell_sim(CellSimConfig::smoke(1));
        assert!(
            r.harq_retransmissions > 0,
            "the storm must force retransmissions"
        );
        let p50 = r.latency.total.quantile_upper(0.50);
        let p99 = r.latency.total.quantile_upper(0.99);
        assert!(
            p99 > p50,
            "tail must be heavier than the median: p50={p50} p99={p99}"
        );
        assert!(
            p99 >= HARQ_RTT_TTIS * TTI_NS,
            "storm retransmissions put at least one HARQ RTT in the tail"
        );
        assert!(p99 < u64::MAX, "p99 must not land in the overflow bucket");
        assert!(r.ue_fairness > 0.0 && r.ue_fairness <= 1.0);
    }

    #[test]
    fn storm_degrades_the_tail() {
        let mut calm_cfg = CellSimConfig::smoke(3);
        calm_cfg.storm = None;
        let calm = run_cell_sim(calm_cfg);
        let stormy = run_cell_sim(CellSimConfig::smoke(3));
        assert_eq!(calm.harq_retransmissions, 0, "no storm, no retransmissions");
        assert!(stormy.harq_retransmissions > 0);
        assert!(
            stormy.latency.total.quantile_upper(0.99) > calm.latency.total.quantile_upper(0.99),
            "the storm must lengthen the p99 tail"
        );
    }

    #[test]
    fn arrival_means_are_honest() {
        for process in [
            ArrivalProcess::Constant { mean_per_tti: 1.3 },
            ArrivalProcess::Bursty {
                on_mean_per_tti: 2.0,
                p_on_to_off: 0.01,
                p_off_to_on: 0.03,
            },
            ArrivalProcess::Diurnal {
                mean_per_tti: 1.1,
                depth: 0.8,
                period_ttis: 500,
            },
        ] {
            let mut g = ArrivalGen::new(process, 42);
            let n = 200_000u64;
            let total: u64 = (0..n).map(|t| g.draw(t) as u64).sum();
            let measured = total as f64 / n as f64;
            let expected = process.mean_per_tti();
            assert!(
                (measured - expected).abs() < 0.05 * expected + 0.01,
                "{}: measured {measured:.3} vs expected {expected:.3}",
                process.name()
            );
        }
    }

    #[test]
    fn traffic_mixes_draw_their_classes() {
        let mix = TrafficMix::paper_sweep();
        assert_eq!(mix.classes().len(), 14);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen_tcp = false;
        let mut sum = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let (t, len) = mix.draw(&mut rng);
            assert!((64..=1400).contains(&len));
            seen_tcp |= matches!(t, Transport::Tcp);
            sum += len;
        }
        assert!(seen_tcp, "the paper sweep includes TCP");
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - mix.mean_wire_len()).abs() < 25.0,
            "measured mean {mean:.0} vs declared {:.0}",
            mix.mean_wire_len()
        );
        assert!(TrafficMix::imix().mean_wire_len() < 500.0);
        assert!(TrafficMix::voip().mean_wire_len() < 100.0);
    }

    #[test]
    fn harq_oracle_severity_orders_attempts() {
        let mut o = HarqOracle::new();
        // Mild damage decodes first try; storm severity needs combining.
        let mild = o.attempts(40, 1);
        assert_eq!(mild, 1, "1-in-40 flips must decode on the first attempt");
        let severe: Vec<u32> = (0..5).map(|p| o.attempts(5, p)).collect();
        assert!(
            severe.iter().any(|&a| a != 1),
            "1-in-5 flips at rate 0.65 must force retransmissions: {severe:?}"
        );
        assert!(
            severe.iter().all(|&a| a <= 4),
            "attempts are bounded by the rv schedule: {severe:?}"
        );
        // Memoized: same key, no growth.
        let cached = o.cached();
        o.attempts(5, 0);
        assert_eq!(o.cached(), cached);
    }

    #[test]
    fn stage_graph_model_conserves_packets_and_fills_lanes() {
        let r = run_cell_sim(CellSimConfig::smoke(1));
        // Every served packet records exactly one latency sample even
        // though recording is deferred to its last block's launch.
        assert_eq!(r.latency.total.count(), r.served_packets);
        assert_eq!(r.latency.batch.count(), r.served_packets);
        let blocks = r.batch_quad_blocks + r.batch_pair_blocks + r.batch_single_blocks;
        assert!(blocks > 0, "served traffic must stage decode blocks");
        assert!(r.batch_quad_blocks > 0, "some quads must form");
        assert!(r.batch_flush_lanes_full > 0);
    }

    #[test]
    fn lane_occupancy_rises_with_offered_load() {
        // At the smoke preset's light load (~3 packets/TTI over 7 K
        // profiles) pools often age out before filling; under heavy
        // load the same deadline leaves mostly full quads.
        let light = run_cell_sim(CellSimConfig::smoke(3));
        let mut heavy_cfg = CellSimConfig::smoke(3);
        heavy_cfg.arrivals = ArrivalProcess::Constant { mean_per_tti: 8.0 };
        let heavy = run_cell_sim(heavy_cfg);
        assert!(
            heavy.batch_lane_occupancy() > light.batch_lane_occupancy(),
            "occupancy must rise with load: light={:.2} heavy={:.2}",
            light.batch_lane_occupancy(),
            heavy.batch_lane_occupancy()
        );
        assert!(
            heavy.batch_lane_occupancy() > 0.6,
            "heavy load should mostly fill lanes: {:.2}",
            heavy.batch_lane_occupancy()
        );
    }

    #[test]
    fn stage_graph_model_speeds_up_processing() {
        let mut serial_cfg = CellSimConfig::smoke(2);
        serial_cfg.stage_graph = false;
        let serial = run_cell_sim(serial_cfg);
        let graph = run_cell_sim(CellSimConfig::smoke(2));
        // Identical seed → identical traffic; batching only changes
        // decode cost and adds a bounded formation wait.
        assert_eq!(serial.served_packets, graph.served_packets);
        assert_eq!(serial.served_bits, graph.served_bits);
        assert!(
            graph.proc_ns_total < serial.proc_ns_total,
            "batched calc must cost less: {} vs {}",
            graph.proc_ns_total,
            serial.proc_ns_total
        );
        assert!(
            graph.cores_for(300.0) < serial.cores_for(300.0),
            "fewer cores for the same served Mbps"
        );
        assert_eq!(serial.batch_quad_blocks, 0, "serial model never batches");
        assert_eq!(serial.latency.batch.count(), serial.served_packets);
    }

    #[test]
    fn batch_wait_is_bounded_by_the_deadline_flush() {
        let r = run_cell_sim(CellSimConfig::smoke(5));
        // Aged pools flush after BATCH_DEADLINE_TTIS, so no packet
        // (except end-of-run drains) waits much longer than that.
        let p99 = r.latency.batch.quantile_upper(0.99);
        assert!(
            p99 <= 2 * BATCH_DEADLINE_TTIS * TTI_NS,
            "batch-formation wait must stay bounded: p99={p99}ns"
        );
    }

    #[test]
    fn cores_scale_with_cells() {
        let one = run_cell_sim(CellSimConfig {
            ttis: 400,
            ues_per_cell: 64,
            ..CellSimConfig::full(1, 9)
        });
        let two = run_cell_sim(CellSimConfig {
            ttis: 400,
            ues_per_cell: 64,
            ..CellSimConfig::full(2, 9)
        });
        assert!(two.served_packets > one.served_packets);
        assert!(
            two.core_equivalents() > one.core_equivalents(),
            "more cells, more modeled PHY work"
        );
        assert!(one.cores_for(300.0).is_finite());
        assert!(two.cores_for(600.0) > one.cores_for(300.0) * 1.5);
    }
}
