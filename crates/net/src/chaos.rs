//! Deterministic chaos scheduler: phased storms over the cell-scale
//! simulator and the threaded uplink runner, with a measured
//! time-to-recover.
//!
//! Robustness claims need numbers, not adjectives. This module turns
//! "the stack survives a storm" into two gated measurements:
//!
//! * [`run_cell_chaos`] drives [`CellSim`] through a windowed
//!   baseline → storm → recovery schedule using the stepped simulation
//!   API ([`CellSim::step`]): the storm phase layers a HARQ sign-flip
//!   storm on a fleet-wide SNR collapse
//!   ([`CellSim::set_chaos_snr_offset_db`]), and the recovery clock
//!   counts TTIs from storm end until every remaining window's p99
//!   latency and drop rate are back inside bands derived from the
//!   baseline windows. Everything is deterministic from the seed, so
//!   the `chaos_recovery` benchgate suite pins the recovery time
//!   exactly.
//! * [`run_runner_chaos`] drives [`run_uplink_stagegraph_metered`]
//!   through six storm phases — calm, worker-kill wave, a breaker-flap
//!   fault burst, a deadline squeeze, an SNR collapse, recovery — with
//!   per-stage circuit breakers armed and a shared [`FlightRecorder`]
//!   attached. One worker keeps every count (restarts, breaker trips /
//!   resets / fast-fails) deterministic; the report's snapshot feeds
//!   the same gated suite.

use crate::cellsim::{CellSim, CellSimConfig, HarqStorm};
use crate::error::ErrorCategory;
use crate::faultinject::{FaultKind, FaultMix};
use crate::metrics::{PipelineMetrics, RunnerMetrics};
use crate::observe::{BreakerConfig, FlightRecorder};
use crate::packet::Transport;
use crate::pipeline::PipelineConfig;
use crate::runner::{run_uplink_stagegraph_metered, FaultPlan, RING_CAPACITY};
use crate::stagegraph::StageGraphConfig;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Cell-scale chaos: windowed storm with a recovery clock
// ---------------------------------------------------------------------------

/// Which schedule phase a measurement window belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhaseKind {
    /// Pre-storm calibration: these windows define the recovery bands.
    Baseline,
    /// Storm: HARQ sign-flip storm plus fleet-wide SNR collapse.
    Storm,
    /// Post-storm: the recovery clock runs over these windows.
    Recovery,
}

impl ChaosPhaseKind {
    /// Snake-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ChaosPhaseKind::Baseline => "baseline",
            ChaosPhaseKind::Storm => "storm",
            ChaosPhaseKind::Recovery => "recovery",
        }
    }
}

/// One measurement window of a cell-scale chaos run.
#[derive(Debug, Clone)]
pub struct ChaosWindow {
    /// Schedule phase.
    pub phase: ChaosPhaseKind,
    /// First TTI of the window.
    pub start_tti: u64,
    /// Packets that arrived during the window.
    pub offered: u64,
    /// Packets served (latency recorded) during the window.
    pub served: u64,
    /// Packets lost to rv-schedule exhaustion during the window.
    pub dropped: u64,
    /// p99 of end-to-end latency over the window's served packets
    /// (0 when nothing was served).
    pub p99_ns: u64,
    /// `dropped / (served + dropped)` for the window.
    pub drop_rate: f64,
    /// Whether the window sits inside the baseline-derived bands.
    pub in_band: bool,
}

/// Cell-scale chaos schedule. The run is
/// `baseline_windows → storm_windows → recovery_windows`, each window
/// [`Self::window_ttis`] long; [`Self::sim`] must carry no storm of
/// its own (the schedule injects one).
#[derive(Debug, Clone)]
pub struct CellChaosConfig {
    /// Base simulation (storm-free; the schedule owns the storm).
    pub sim: CellSimConfig,
    /// Measurement window length in TTIs.
    pub window_ttis: u64,
    /// Calibration windows before the storm.
    pub baseline_windows: usize,
    /// Storm windows.
    pub storm_windows: usize,
    /// Windows the recovery clock may run over.
    pub recovery_windows: usize,
    /// HARQ sign-flip spacing for the sustained storm windows (see
    /// [`HarqStorm`]): the densest spacing the rv schedule still
    /// combines through, so served packets pay maximum
    /// retransmissions.
    pub storm_flip_every: usize,
    /// Flip spacing for the opening storm window: dense enough to
    /// exhaust the rv schedule, so the storm's first window costs
    /// packets outright.
    pub storm_lethal_flip_every: usize,
    /// Fleet-wide SNR offset (dB, negative) applied during the storm.
    pub snr_collapse_db: f32,
    /// A window is in-band when its p99 is at most this multiple of
    /// the worst baseline window's p99…
    pub p99_band_factor: f64,
    /// …and its drop rate is at most the worst baseline drop rate plus
    /// this slack.
    pub drop_band_slack: f64,
}

impl CellChaosConfig {
    /// The deterministic CI preset: the cell-scale smoke simulation
    /// (2 cells × 48 UEs, bursty paper-sweep traffic) under a
    /// 200-TTI storm that combines a lethal 1-in-4 flip window then a sustained 1-in-5 window with a −6 dB
    /// fleet-wide collapse, then 700 TTIs for the recovery clock.
    pub fn smoke(seed: u64) -> Self {
        let window_ttis = 100;
        let (baseline, storm, recovery) = (3usize, 2usize, 7usize);
        let mut sim = CellSimConfig::smoke(seed);
        sim.name = "chaos_smoke";
        sim.storm = None;
        sim.ttis = window_ttis * (baseline + storm + recovery) as u64;
        // Steadier than the smoke preset's bursty load: the recovery
        // clock needs calm baseline windows (short, stable tails) so a
        // storm-driven breach is unambiguous and the post-storm
        // backlog drains within the recovery schedule. Burst-driven
        // tails are the cell_scale_smoke suite's subject, not this
        // one's.
        sim.arrivals = crate::cellsim::ArrivalProcess::Constant { mean_per_tti: 0.7 };
        Self {
            sim,
            window_ttis,
            baseline_windows: baseline,
            storm_windows: storm,
            recovery_windows: recovery,
            storm_flip_every: 5,
            storm_lethal_flip_every: 4,
            snr_collapse_db: -6.0,
            p99_band_factor: 2.0,
            drop_band_slack: 0.02,
        }
    }
}

/// Outcome of a cell-scale chaos run.
#[derive(Debug)]
pub struct CellChaosReport {
    /// Every measurement window, in schedule order.
    pub windows: Vec<ChaosWindow>,
    /// Worst baseline-window p99 (the band anchor).
    pub baseline_p99_ns: u64,
    /// Worst baseline-window drop rate.
    pub baseline_drop_rate: f64,
    /// Worst storm-window p99 (how hard the storm bit).
    pub storm_peak_p99_ns: u64,
    /// Whether the tail returned inside the bands before the schedule
    /// ran out.
    pub recovered: bool,
    /// TTIs from storm end until every remaining window was in-band
    /// (the full recovery span when [`Self::recovered`] is false).
    pub recovery_ttis: u64,
    /// Packets offered across the whole run.
    pub offered_packets: u64,
    /// Packets served across the whole run.
    pub served_packets: u64,
    /// Packets dropped across the whole run.
    pub dropped_packets: u64,
    /// HARQ retransmissions across the whole run.
    pub harq_retransmissions: u64,
    /// Divergence-guard MCS step-downs across all cells
    /// ([`crate::amc::DivergenceGuard`]).
    pub amc_stepdowns: u64,
}

impl CellChaosReport {
    /// Flat benchgate-ready snapshot: exact counts (`.count`),
    /// percentile-tolerance latencies (`.p99_ns`) and ratios.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let in_band = self.windows.iter().filter(|w| w.in_band).count();
        vec![
            ("recovered.count".into(), f64::from(self.recovered)),
            ("recovery.ttis.count".into(), self.recovery_ttis as f64),
            ("windows.in_band.count".into(), in_band as f64),
            ("baseline.p99_ns".into(), self.baseline_p99_ns as f64),
            ("storm.peak.p99_ns".into(), self.storm_peak_p99_ns as f64),
            ("offered.count".into(), self.offered_packets as f64),
            ("served.count".into(), self.served_packets as f64),
            ("dropped.count".into(), self.dropped_packets as f64),
            ("harq_retx.count".into(), self.harq_retransmissions as f64),
            ("amc_stepdowns.count".into(), self.amc_stepdowns as f64),
        ]
    }
}

/// Run the windowed baseline → storm → recovery schedule and measure
/// the time-to-recover. Fully deterministic from `cfg.sim.seed`.
pub fn run_cell_chaos(cfg: CellChaosConfig) -> CellChaosReport {
    assert!(cfg.baseline_windows >= 1, "bands need a baseline");
    assert!(cfg.sim.storm.is_none(), "the schedule owns the storm");
    let total_windows = cfg.baseline_windows + cfg.storm_windows + cfg.recovery_windows;
    assert_eq!(
        cfg.sim.ttis,
        cfg.window_ttis * total_windows as u64,
        "sim length must equal the window schedule"
    );
    let storm_start = cfg.baseline_windows as u64 * cfg.window_ttis;
    let storm_len = cfg.storm_windows as u64 * cfg.window_ttis;

    let mut sim = CellSim::new(cfg.sim.clone());
    let mut windows: Vec<ChaosWindow> = Vec::with_capacity(total_windows);
    let mut offered = 0u64;
    let mut served = 0u64;
    let mut dropped = 0u64;
    let mut harq_retx = 0u64;
    for wi in 0..total_windows {
        let phase = if wi < cfg.baseline_windows {
            ChaosPhaseKind::Baseline
        } else if wi < cfg.baseline_windows + cfg.storm_windows {
            ChaosPhaseKind::Storm
        } else {
            ChaosPhaseKind::Recovery
        };
        let start_tti = wi as u64 * cfg.window_ttis;
        if phase == ChaosPhaseKind::Storm {
            // The HARQ oracle is bimodal in flip spacing (dense flips
            // exhaust the rv schedule outright, sparse ones always
            // combine through), so the storm opens with one lethal
            // window that costs packets and sustains with windows of
            // maximum survivable severity that pile up
            // retransmissions.
            let first_storm = wi == cfg.baseline_windows;
            sim.set_storm(Some(HarqStorm {
                start_tti: storm_start,
                len_ttis: storm_len,
                flip_every: if first_storm {
                    cfg.storm_lethal_flip_every
                } else {
                    cfg.storm_flip_every
                },
            }));
            sim.set_chaos_snr_offset_db(cfg.snr_collapse_db);
        } else if start_tti == storm_start + storm_len {
            sim.set_storm(None);
            sim.set_chaos_snr_offset_db(0.0);
        }
        let mut rep = sim.begin_report();
        for tti in start_tti..start_tti + cfg.window_ttis {
            sim.step(tti, &mut rep);
        }
        if wi == total_windows - 1 {
            // Drain partial batch pools so the last window accounts
            // for every served packet (the drain is charged to the
            // final TTI, exactly as `CellSim::run` does).
            sim.finish_report(&mut rep);
        }
        offered += rep.offered_packets;
        served += rep.served_packets;
        dropped += rep.dropped_packets;
        harq_retx += rep.harq_retransmissions;
        let resolved = rep.served_packets + rep.dropped_packets;
        windows.push(ChaosWindow {
            phase,
            start_tti,
            offered: rep.offered_packets,
            served: rep.served_packets,
            dropped: rep.dropped_packets,
            p99_ns: if rep.served_packets == 0 {
                0
            } else {
                rep.latency.total.quantile_upper(0.99)
            },
            drop_rate: if resolved == 0 {
                0.0
            } else {
                rep.dropped_packets as f64 / resolved as f64
            },
            in_band: false,
        });
    }

    // Bands from the worst baseline window.
    let baseline = &windows[..cfg.baseline_windows];
    let baseline_p99_ns = baseline.iter().map(|w| w.p99_ns).max().unwrap_or(0);
    let baseline_drop_rate = baseline.iter().map(|w| w.drop_rate).fold(0.0, f64::max);
    let p99_band = (baseline_p99_ns as f64 * cfg.p99_band_factor) as u64;
    let drop_band = baseline_drop_rate + cfg.drop_band_slack;
    for w in &mut windows {
        w.in_band = w.p99_ns <= p99_band && w.drop_rate <= drop_band;
    }

    // Recovery clock: TTIs from storm end until every remaining
    // recovery window is in-band.
    let first_recovery = cfg.baseline_windows + cfg.storm_windows;
    let stable_from =
        (first_recovery..total_windows).find(|&j| windows[j..].iter().all(|w| w.in_band));
    let (recovered, recovery_ttis) = match stable_from {
        Some(j) => (true, (j - first_recovery) as u64 * cfg.window_ttis),
        None => (false, cfg.recovery_windows as u64 * cfg.window_ttis),
    };
    let storm_peak_p99_ns = windows
        .iter()
        .filter(|w| w.phase == ChaosPhaseKind::Storm)
        .map(|w| w.p99_ns)
        .max()
        .unwrap_or(0);

    CellChaosReport {
        windows,
        baseline_p99_ns,
        baseline_drop_rate,
        storm_peak_p99_ns,
        recovered,
        recovery_ttis,
        offered_packets: offered,
        served_packets: served,
        dropped_packets: dropped,
        harq_retransmissions: harq_retx,
        amc_stepdowns: sim.amc_stepdowns(),
    }
}

// ---------------------------------------------------------------------------
// Runner chaos: six storm phases with breakers armed
// ---------------------------------------------------------------------------

/// Runner chaos tuning.
#[derive(Debug, Clone, Copy)]
pub struct RunnerChaosConfig {
    /// Master seed for every phase's fault plan.
    pub seed: u64,
    /// Circuit-breaker tuning armed on every phase's pipeline.
    pub breakers: BreakerConfig,
    /// Flight-recorder capacity (events).
    pub recorder_capacity: usize,
}

impl RunnerChaosConfig {
    /// The deterministic CI preset: fast breaker cycles (trip after 4,
    /// 8-packet cooldown) so flap phases exercise trips *and* resets
    /// in a few hundred packets.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            breakers: BreakerConfig {
                trip_after: 4,
                cooldown_packets: 8,
            },
            recorder_capacity: 1024,
        }
    }
}

/// Per-phase outcome of a runner chaos run.
#[derive(Debug, Clone)]
pub struct RunnerChaosPhase {
    /// Phase name.
    pub name: &'static str,
    /// Packets admitted to the chaos driver.
    pub admitted: usize,
    /// Packets that produced a result (`admitted - worker_restarts`).
    pub packets: usize,
    /// Packets that decoded clean end-to-end.
    pub ok_packets: usize,
    /// Isolated worker restarts absorbed.
    pub worker_restarts: usize,
    /// Failed packets, summed over every error category.
    pub errors: u64,
    /// Circuit-breaker trips during the phase.
    pub breaker_trips: u64,
    /// Half-open probes that closed a breaker again.
    pub breaker_resets: u64,
    /// Packets fast-failed by an open breaker.
    pub breaker_fastfails: u64,
    /// Native→Scalar ladder degradations during the phase.
    pub backend_degradations: u64,
}

/// Outcome of a runner chaos run: six phases plus the shared flight
/// recorder (the CI failure artifact).
#[derive(Debug)]
pub struct RunnerChaosReport {
    /// Per-phase outcomes, in schedule order.
    pub phases: Vec<RunnerChaosPhase>,
    /// The flight recorder every phase recorded into.
    pub recorder: Arc<FlightRecorder>,
}

impl RunnerChaosReport {
    /// Look up one phase by name.
    pub fn phase(&self, name: &str) -> &RunnerChaosPhase {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no phase named {name}"))
    }

    /// Flat benchgate-ready snapshot: every count is exact (single
    /// worker, seeded faults ⇒ fully deterministic).
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for p in &self.phases {
            out.push((format!("{}.packets.count", p.name), p.packets as f64));
            out.push((format!("{}.ok.count", p.name), p.ok_packets as f64));
            out.push((
                format!("{}.restarts.count", p.name),
                p.worker_restarts as f64,
            ));
            out.push((format!("{}.errors.count", p.name), p.errors as f64));
            out.push((
                format!("{}.breaker_trips.count", p.name),
                p.breaker_trips as f64,
            ));
            out.push((
                format!("{}.breaker_resets.count", p.name),
                p.breaker_resets as f64,
            ));
            out.push((
                format!("{}.breaker_fastfails.count", p.name),
                p.breaker_fastfails as f64,
            ));
        }
        out.push((
            "flight.recorded.count".into(),
            self.recorder.recorded() as f64,
        ));
        out
    }
}

/// One phase's specification.
struct PhaseSpec {
    name: &'static str,
    cfg: PipelineConfig,
    classes: &'static [(Transport, usize)],
    n: usize,
    faults: Option<FaultPlan>,
}

/// Drive the stage-graph uplink runner through six deterministic storm
/// phases with circuit breakers armed: calm traffic, a worker-kill
/// wave ([`FaultKind::WorkerPanic`]), a breaker-flap burst (mostly
/// [`FaultKind::SaturateLlrs`] with enough clean packets that half-open
/// probes succeed sometimes), a deadline squeeze (1 ns budget), an SNR
/// collapse (−10 dB multi-block traffic ⇒ decoder divergence), and a
/// clean recovery phase. One worker per phase keeps every count exact;
/// each phase gets a fresh pipeline/breakers, and all phases share one
/// [`FlightRecorder`].
///
/// Panics if any phase violates the conservation invariant
/// `packets + worker_restarts == admitted`.
pub fn run_runner_chaos(cfg: RunnerChaosConfig) -> RunnerChaosReport {
    let base = PipelineConfig {
        snr_db: 30.0,
        breakers: Some(cfg.breakers),
        ..Default::default()
    };
    let specs = [
        PhaseSpec {
            name: "calm",
            cfg: base,
            classes: &[(Transport::Udp, 128)],
            n: 48,
            faults: None,
        },
        PhaseSpec {
            name: "panic_wave",
            cfg: base,
            classes: &[(Transport::Udp, 128)],
            n: 64,
            faults: Some(FaultPlan {
                seed: cfg.seed,
                mix: FaultMix::only(FaultKind::Clean)
                    .with_weight(FaultKind::Clean, 5)
                    .with_weight(FaultKind::WorkerPanic, 1),
            }),
        },
        PhaseSpec {
            name: "flap",
            cfg: base,
            classes: &[(Transport::Udp, 128)],
            n: 160,
            faults: Some(FaultPlan {
                seed: cfg.seed ^ 0xf1a9,
                mix: FaultMix::only(FaultKind::SaturateLlrs)
                    .with_weight(FaultKind::SaturateLlrs, 4)
                    .with_weight(FaultKind::Clean, 1),
            }),
        },
        PhaseSpec {
            name: "deadline_squeeze",
            cfg: PipelineConfig {
                deadline_ns: Some(1),
                ..base
            },
            classes: &[(Transport::Udp, 128)],
            n: 64,
            faults: None,
        },
        PhaseSpec {
            name: "snr_collapse",
            cfg: PipelineConfig {
                snr_db: -10.0,
                ..base
            },
            classes: &[(Transport::Udp, 600)],
            n: 48,
            faults: None,
        },
        PhaseSpec {
            name: "recovery",
            cfg: base,
            classes: &[(Transport::Udp, 128)],
            n: 48,
            faults: None,
        },
    ];

    let recorder = Arc::new(FlightRecorder::with_capacity(cfg.recorder_capacity));
    let phases = specs
        .into_iter()
        .map(|spec| {
            let pm = Arc::new(PipelineMetrics::new(true));
            let rm = RunnerMetrics::new(true, RING_CAPACITY);
            let rep = run_uplink_stagegraph_metered(
                spec.cfg,
                spec.classes,
                spec.n,
                1,
                StageGraphConfig::default(),
                &rm,
                None,
                spec.faults,
                Some(recorder.clone()),
                Some(pm.clone()),
            );
            assert_eq!(
                rep.packets + rep.worker_restarts,
                spec.n,
                "{}: every packet must complete or be accounted to a panic",
                spec.name
            );
            let errors = ErrorCategory::ALL
                .into_iter()
                .map(|c| pm.error_count(c))
                .sum();
            RunnerChaosPhase {
                name: spec.name,
                admitted: spec.n,
                packets: rep.packets,
                ok_packets: rep.ok_packets,
                worker_restarts: rep.worker_restarts,
                errors,
                breaker_trips: pm.breaker_trips.get(),
                breaker_resets: pm.breaker_resets.get(),
                breaker_fastfails: pm.breaker_fastfails.get(),
                backend_degradations: pm.backend_degradations.get(),
            }
        })
        .collect();
    RunnerChaosReport { phases, recorder }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::TraceKind;

    #[test]
    fn cell_chaos_storm_bites_and_recovers() {
        let r = run_cell_chaos(CellChaosConfig::smoke(7));
        assert_eq!(
            r.windows.len(),
            12,
            "3 baseline + 2 storm + 7 recovery windows"
        );
        // The storm must actually degrade the tail past the band…
        assert!(
            r.storm_peak_p99_ns > r.baseline_p99_ns * 2,
            "storm peak {} must breach the band around baseline {}",
            r.storm_peak_p99_ns,
            r.baseline_p99_ns
        );
        assert!(r.dropped_packets > 0, "storm severity must cost packets");
        assert!(r.harq_retransmissions > 0);
        // …and the stack must come back inside it before the schedule
        // runs out.
        assert!(r.recovered, "windows: {:?}", r.windows);
        assert!(
            r.recovery_ttis <= 700,
            "recovery clock is bounded by the schedule"
        );
        // Baseline windows are in-band by construction.
        assert!(r.windows[..3].iter().all(|w| w.in_band));
    }

    #[test]
    fn cell_chaos_is_deterministic() {
        let a: Vec<_> = run_cell_chaos(CellChaosConfig::smoke(11)).snapshot();
        let b: Vec<_> = run_cell_chaos(CellChaosConfig::smoke(11)).snapshot();
        assert_eq!(a, b, "same seed must reproduce byte-identically");
    }

    #[test]
    fn runner_chaos_phases_hit_their_failure_modes() {
        let r = run_runner_chaos(RunnerChaosConfig::smoke(3));
        assert_eq!(r.phases.len(), 6);

        let calm = r.phase("calm");
        assert_eq!(calm.ok_packets, calm.admitted, "calm traffic all decodes");
        assert_eq!(calm.breaker_trips, 0);

        let panic = r.phase("panic_wave");
        assert!(panic.worker_restarts > 0, "the kill wave must fire");
        assert_eq!(panic.packets + panic.worker_restarts, panic.admitted);

        let flap = r.phase("flap");
        assert!(flap.breaker_trips > 0, "sustained faults must trip");
        assert!(flap.breaker_resets > 0, "clean probes must reset: {flap:?}");
        assert!(flap.breaker_fastfails > 0);

        let deadline = r.phase("deadline_squeeze");
        assert_eq!(deadline.ok_packets, 0, "a 1 ns budget admits nothing");
        assert!(deadline.breaker_trips > 0, "equalizer breaker must open");
        assert!(deadline.breaker_fastfails > 0);

        let collapse = r.phase("snr_collapse");
        assert_eq!(collapse.ok_packets, 0, "−10 dB decodes nothing");
        assert!(collapse.breaker_trips > 0, "decoder breaker must open");

        let recovery = r.phase("recovery");
        assert_eq!(recovery.ok_packets, recovery.admitted);
        assert_eq!(recovery.breaker_trips, 0, "fresh pipeline, calm channel");

        // The shared recorder saw every kind of trouble.
        let dump = r.recorder.dump_last(r.recorder.capacity());
        assert!(dump
            .iter()
            .any(|e| e.trace_kind() == TraceKind::WorkerRestart));
        assert!(dump.iter().any(|e| e.trace_kind() == TraceKind::PacketDone));
        assert!(r.recorder.recorded() > 0);
    }

    #[test]
    fn runner_chaos_is_deterministic() {
        let a = run_runner_chaos(RunnerChaosConfig::smoke(5)).snapshot();
        let b = run_runner_chaos(RunnerChaosConfig::smoke(5)).snapshot();
        assert_eq!(a, b, "single worker + seeded faults must reproduce");
    }
}
