//! Lock-free single-producer/single-consumer ring buffer.
//!
//! Models the DPDK kernel-bypass queue of the paper's Figure 2 ("the
//! packets can be processed directly on the user space by passing
//! through the kernel space"). The implementation is the classic
//! power-of-two ring with cache-padded head/tail counters and
//! acquire/release publication, per the workspace's concurrency
//! guidelines (Rust Atomics and Locks, ch. 5).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vran_util::CachePadded;

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    head: CachePadded<AtomicUsize>, // next slot to pop
    tail: CachePadded<AtomicUsize>, // next slot to push
}

unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

/// Producer handle.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer handle.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// A bounded SPSC ring of capacity `cap` (rounded up to a power of
/// two).
pub struct SpscRing;

impl SpscRing {
    /// Create the ring, returning its two endpoints.
    pub fn with_capacity<T>(cap: usize) -> (Producer<T>, Consumer<T>) {
        let cap = cap.max(2).next_power_of_two();
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let inner = Arc::new(Inner {
            buf,
            mask: cap - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        });
        (
            Producer {
                inner: inner.clone(),
            },
            Consumer { inner },
        )
    }
}

impl<T> Producer<T> {
    /// Attempt to enqueue; returns the value back when the ring is
    /// full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let inner = &*self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(v);
        }
        unsafe {
            (*inner.buf[tail & inner.mask].get()).write(v);
        }
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Current occupancy (approximate under concurrency).
    pub fn len(&self) -> usize {
        let t = self.inner.tail.load(Ordering::Relaxed);
        let h = self.inner.head.load(Ordering::Relaxed);
        t.wrapping_sub(h)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Attempt to dequeue.
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = unsafe { (*inner.buf[head & inner.mask].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Current occupancy (approximate under concurrency).
    pub fn len(&self) -> usize {
        let t = self.inner.tail.load(Ordering::Relaxed);
        let h = self.inner.head.load(Ordering::Relaxed);
        t.wrapping_sub(h)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop any items still in the ring.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            unsafe {
                (*self.buf[i & self.mask].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut p, mut c) = SpscRing::with_capacity::<u32>(8);
        for i in 0..8 {
            p.push(i).unwrap();
        }
        assert!(p.push(99).is_err(), "ring must report full");
        for i in 0..8 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraps_around() {
        let (mut p, mut c) = SpscRing::with_capacity::<usize>(4);
        for round in 0..10 {
            for i in 0..3 {
                p.push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(c.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn cross_thread_transfer_is_lossless() {
        const N: usize = 100_000;
        let (mut p, mut c) = SpscRing::with_capacity::<usize>(1024);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                loop {
                    match p.push(i) {
                        Ok(()) => break,
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "FIFO violated");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drops_remaining_items() {
        // Drop with items still queued; detect leaks via Arc counters.
        let item = Arc::new(0u8);
        {
            let (mut p, _c) = SpscRing::with_capacity::<Arc<u8>>(8);
            for _ in 0..5 {
                p.push(item.clone()).unwrap();
            }
            assert_eq!(Arc::strong_count(&item), 6);
        }
        assert_eq!(Arc::strong_count(&item), 1, "queued items must be dropped");
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut p, _c) = SpscRing::with_capacity::<u8>(5);
        for i in 0..8 {
            p.push(i).unwrap();
        }
        assert!(p.push(8).is_err());
    }
}
