//! HARQ with incremental redundancy and chase combining.
//!
//! LTE retransmits failed transport blocks with a different redundancy
//! version each time (rv sequence 0, 2, 3, 1), and the receiver
//! soft-combines the de-rate-matched LLRs of every attempt before
//! decoding. This extends the paper's packet path with the
//! retransmission machinery an operational eNodeB runs — and stresses
//! the de-rate-matcher's combining path far harder than a single shot.

use crate::error::{FrameFault, PipelineError};
use vran_phy::crc::CRC24B;
use vran_phy::llr::{adds16, Llr, TurboLlrs};
use vran_phy::rate_match::RateMatcher;
use vran_phy::turbo::{TurboCodeword, TurboDecoder};

/// The standard redundancy-version schedule.
pub const RV_SEQUENCE: [usize; 4] = [0, 2, 3, 1];

/// Transmitter side of one HARQ process (one code block).
#[derive(Debug, Clone)]
pub struct HarqTransmitter {
    d: [Vec<u8>; 3],
    rm: RateMatcher,
    attempt: usize,
}

impl HarqTransmitter {
    /// Wrap an encoded code block.
    pub fn new(cw: &TurboCodeword) -> Self {
        Self {
            d: cw.to_dstreams(),
            rm: RateMatcher::new(cw.k + 4),
            attempt: 0,
        }
    }

    /// Number of transmissions made so far.
    pub fn attempts(&self) -> usize {
        self.attempt
    }

    /// Produce the next (re)transmission of `e` coded bits; `None`
    /// after the rv schedule is exhausted.
    pub fn next_transmission(&mut self, e: usize) -> Option<(usize, Vec<u8>)> {
        let rv = *RV_SEQUENCE.get(self.attempt)?;
        self.attempt += 1;
        Some((rv, self.rm.rate_match(&self.d, e, rv)))
    }
}

/// Receiver side of one HARQ process: accumulates combined d-stream
/// LLRs across attempts.
#[derive(Debug, Clone)]
pub struct HarqReceiver {
    k: usize,
    rm: RateMatcher,
    acc: [Vec<Llr>; 3],
    decoder: TurboDecoder,
    attempts: usize,
}

/// Outcome of feeding one (re)transmission to the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarqOutcome {
    /// Whether the block now passes its CRC.
    pub ok: bool,
    /// Decoded bits (valid when `ok`).
    pub bits: Vec<u8>,
    /// Attempts consumed so far.
    pub attempts: usize,
}

impl HarqReceiver {
    /// New process for block size `k` (with per-block CRC24B).
    pub fn new(k: usize, decoder_iterations: usize) -> Self {
        Self {
            k,
            rm: RateMatcher::new(k + 4),
            acc: [vec![0; k + 4], vec![0; k + 4], vec![0; k + 4]],
            decoder: TurboDecoder::new(k, decoder_iterations),
            attempts: 0,
        }
    }

    /// Combine one received transmission (LLRs for `e` coded bits at
    /// redundancy version `rv`) and attempt a decode.
    ///
    /// A redundancy version outside the standard's 0..4 range, or an
    /// empty LLR buffer, rejects as [`PipelineError::MalformedFrame`]
    /// without touching the accumulator — a lying retransmission must
    /// not poison the soft-combining state.
    pub fn receive(&mut self, llrs: &[Llr], rv: usize) -> Result<HarqOutcome, PipelineError> {
        if rv >= 4 {
            return Err(PipelineError::MalformedFrame {
                reason: FrameFault::RedundancyVersion(rv),
            });
        }
        if llrs.is_empty() {
            return Err(PipelineError::MalformedFrame {
                reason: FrameFault::Empty,
            });
        }
        self.attempts += 1;
        let d = self.rm.de_rate_match(llrs, rv);
        for (acc, new) in self.acc.iter_mut().zip(&d) {
            for (a, &n) in acc.iter_mut().zip(new) {
                *a = adds16(*a, n);
            }
        }
        let input = TurboLlrs::from_dstreams(&self.acc, self.k);
        let out = self.decoder.decode_with_crc(&input, &CRC24B);
        Ok(HarqOutcome {
            ok: out.crc_ok == Some(true),
            bits: out.bits,
            attempts: self.attempts,
        })
    }

    /// Accumulated LLR magnitude (diagnostic: grows with combining).
    pub fn accumulated_energy(&self) -> u64 {
        self.acc
            .iter()
            .flat_map(|s| s.iter())
            .map(|&l| l.unsigned_abs() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vran_phy::bits::random_bits;
    use vran_phy::turbo::TurboEncoder;

    /// LLRs for transmitted bits with deterministic sign flips
    /// (severity = 1/`flip_every` of positions inverted).
    fn noisy_llrs(bits: &[u8], mag: Llr, flip_every: usize, phase: usize) -> Vec<Llr> {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| {
                let v = if b == 0 { mag } else { -mag };
                if (i + phase).is_multiple_of(flip_every) {
                    -v
                } else {
                    v
                }
            })
            .collect()
    }

    fn block(k: usize, seed: u64) -> (Vec<u8>, TurboCodeword) {
        let payload = random_bits(k - 24, seed);
        let block = CRC24B.attach(&payload);
        let cw = TurboEncoder::new(k).encode(&block);
        (block, cw)
    }

    #[test]
    fn clean_first_attempt_succeeds() {
        let (bits, cw) = block(104, 1);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rx = HarqReceiver::new(104, 6);
        let (rv, coded) = tx.next_transmission(160).unwrap();
        assert_eq!(rv, 0);
        let out = rx
            .receive(&noisy_llrs(&coded, 60, usize::MAX, 0), rv)
            .unwrap();
        assert!(out.ok);
        assert_eq!(out.bits, bits);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn retransmission_rescues_a_failed_block() {
        // Heavily punctured first attempt with 1-in-6 sign flips: too
        // damaged. Each retransmission brings new parity (different rv)
        // and combines, eventually decoding.
        let k = 208;
        let (bits, cw) = block(k, 2);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rx = HarqReceiver::new(k, 6);
        let e = 230; // barely above K: rate ~0.9 on the first shot
        let mut success = None;
        for phase in 0..4 {
            let (rv, coded) = tx.next_transmission(e).unwrap();
            let out = rx
                .receive(&noisy_llrs(&coded, 24, 6, phase * 3 + 1), rv)
                .unwrap();
            if out.ok {
                success = Some((out.bits, out.attempts));
                break;
            }
        }
        let (got, attempts) = success.expect("HARQ must eventually decode");
        assert_eq!(got, bits);
        assert!(
            attempts > 1,
            "first attempt should have failed (rate ~0.9, 17% flips)"
        );
    }

    #[test]
    fn packed_rate_match_round_trips_through_harq() {
        // The transmit-side packed fast path must interoperate with
        // the receive-side HARQ machinery: packed rate-matched output
        // equals the scalar readout bit-for-bit at every redundancy
        // version, and clean LLRs derived from it decode through a
        // fresh HarqReceiver at each rv.
        use vran_phy::rate_match::PackedRateMatcher;
        use vran_phy::turbo::{EncodeScratch, PackedTurboEncoder};

        let k = 104;
        let (bits, cw) = block(k, 5);
        let d = cw.to_dstreams();
        let scalar_rm = RateMatcher::new(k + 4);
        let packed_rm = PackedRateMatcher::new(k + 4);
        let enc = PackedTurboEncoder::new(k);
        let mut scratch = EncodeScratch::default();
        enc.encode_dstreams_into(&bits, &mut scratch);

        for &rv in &RV_SEQUENCE {
            for e in [k, 160, 3 * (k + 4), 6 * (k + 4)] {
                let packed = packed_rm.rate_match_packed(scratch.dstream_words(), e, rv);
                assert_eq!(packed, scalar_rm.rate_match(&d, e, rv), "rv={rv} e={e}");
            }
            let e = 3 * (k + 4);
            let packed = packed_rm.rate_match_packed(scratch.dstream_words(), e, rv);
            let mut rx = HarqReceiver::new(k, 6);
            let out = rx
                .receive(&noisy_llrs(&packed, 60, usize::MAX, 0), rv)
                .unwrap();
            assert!(out.ok, "rv={rv} must decode from clean packed bits");
            assert_eq!(out.bits, bits, "rv={rv}");
        }
    }

    #[test]
    fn rv_schedule_is_exhausted_in_order() {
        let (_, cw) = block(104, 3);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rvs = Vec::new();
        while let Some((rv, _)) = tx.next_transmission(120) {
            rvs.push(rv);
        }
        assert_eq!(rvs, vec![0, 2, 3, 1]);
        assert_eq!(tx.attempts(), 4);
    }

    #[test]
    fn combining_accumulates_energy() {
        let (_, cw) = block(104, 4);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rx = HarqReceiver::new(104, 2);
        let mut last = 0;
        for _ in 0..3 {
            let (rv, coded) = tx.next_transmission(150).unwrap();
            rx.receive(&noisy_llrs(&coded, 20, 9, 0), rv).unwrap();
            let e = rx.accumulated_energy();
            assert!(e > last, "chase combining must accumulate: {e} vs {last}");
            last = e;
        }
    }

    #[test]
    fn out_of_range_rv_rejects_without_poisoning_state() {
        use crate::error::ErrorCategory;
        let (bits, cw) = block(104, 6);
        let mut tx = HarqTransmitter::new(&cw);
        let mut rx = HarqReceiver::new(104, 6);
        let energy0 = rx.accumulated_energy();

        for bad_rv in [4usize, 5, usize::MAX] {
            let e = rx
                .receive(&[10; 160], bad_rv)
                .expect_err("rv ≥ 4 must be rejected");
            assert_eq!(e.category(), ErrorCategory::MalformedFrame);
        }
        let e = rx.receive(&[], 0).expect_err("empty LLRs must be rejected");
        assert_eq!(e.category(), ErrorCategory::MalformedFrame);

        // Rejected attempts left the accumulator and counters alone…
        assert_eq!(rx.attempts, 0);
        assert_eq!(rx.accumulated_energy(), energy0);
        // …so a subsequent honest transmission still decodes.
        let (rv, coded) = tx.next_transmission(160).unwrap();
        let out = rx
            .receive(&noisy_llrs(&coded, 60, usize::MAX, 0), rv)
            .unwrap();
        assert!(out.ok);
        assert_eq!(out.bits, bits);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn different_rvs_cover_different_coded_bits() {
        let (_, cw) = block(104, 5);
        let mut tx = HarqTransmitter::new(&cw);
        let (_, t0) = tx.next_transmission(140).unwrap();
        let (_, t1) = tx.next_transmission(140).unwrap();
        assert_ne!(t0, t1, "rv 0 and rv 2 must select different bits");
    }
}
