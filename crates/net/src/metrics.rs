//! Performance-trajectory metrics: monotonic counters and fixed-bucket
//! latency histograms.
//!
//! Everything here is lock-free (relaxed atomics) so the threaded
//! runner can record from every stage thread, and **near-zero overhead
//! when disabled**: each registry carries an `enabled` flag checked
//! before any atomic touch, and the pipeline skips even the
//! `Instant::now()` calls when no registry is attached.
//!
//! Three registries mirror the three instrumented layers:
//!
//! * [`PipelineMetrics`] — per-stage latency histograms for the PHY
//!   chain ([`Stage`]: CRC → segment → encode → rate-match → modulate
//!   → OFDM → arrange → decode) plus packet counters, recorded by
//!   [`crate::pipeline::UplinkPipeline`].
//! * [`RunnerMetrics`] — ring occupancy and producer/consumer stall
//!   spins from [`crate::runner`]'s threaded drivers.
//! * [`StageGraphMetrics`] — batch-formation counters (quad/pair/single
//!   launches, flush reasons, zmm lane occupancy) from the out-of-order
//!   stage-graph runtime in [`crate::stagegraph`].
//! * [`UarchMetrics`] — cycle, µop and per-port pressure counters
//!   accumulated from `vran-uarch` [`SimReport`]s, so simulator runs
//!   land in the same snapshot namespace as wall-clock metrics.
//!
//! Every registry exports a flat `name → value` snapshot (and a
//! [`Json`] document) — the stable schema `benchgate` compares across
//! commits.

use crate::error::ErrorCategory;
use std::sync::atomic::{AtomicU64, Ordering};
use vran_uarch::{Port, SimReport};
use vran_util::Json;

/// A monotonic event counter (wrapping on overflow, like hardware
/// PMU counters).
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Zeroed counter.
    pub const fn new() -> Self {
        Self {
            v: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (wraps at `u64::MAX`).
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed, strictly-increasing bucket upper bounds
/// (inclusive), with an implicit overflow bucket; also tracks count
/// and sum so means survive bucket quantization.
#[derive(Debug)]
pub struct Histogram {
    edges: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: Counter,
    sum: Counter,
}

impl Histogram {
    /// Histogram over the given inclusive upper bounds. Panics if the
    /// edges are empty or not strictly increasing.
    pub fn new(edges: Vec<u64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must strictly increase"
        );
        let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            edges,
            buckets,
            count: Counter::new(),
            sum: Counter::new(),
        }
    }

    /// Canonical latency grid: powers of two from 256 ns to ~8.4 ms.
    /// Stage timings for one packet land well inside this range.
    pub fn latency_ns() -> Self {
        Self::new((8..24).map(|p| 1u64 << p).collect())
    }

    /// Extended latency grid for cell-scale per-packet latency: powers
    /// of two from 256 ns to ~1.07 s. Queueing delay under bursty load
    /// spans whole TTIs (1 ms each) and HARQ round trips (8 ms each),
    /// far past the per-stage grid's ceiling.
    pub fn latency_wide_ns() -> Self {
        Self::new((8..31).map(|p| 1u64 << p).collect())
    }

    /// Occupancy grid for a ring of `capacity` slots: one bucket per
    /// power of two up to the capacity.
    pub fn occupancy(capacity: usize) -> Self {
        let mut edges = vec![0u64];
        let mut e = 1u64;
        while e < capacity as u64 {
            edges.push(e);
            e *= 2;
        }
        edges.push(capacity as u64);
        Self::new(edges)
    }

    /// Record one observation.
    ///
    /// Ordering contract (the [`Self::snapshot_consistent`] invariant):
    /// the count and sum are bumped **before** the bucket, and the
    /// bucket store is `Release`. A snapshot that reads buckets first
    /// (with `Acquire`) therefore observes, for every bucket increment
    /// it sees, the matching count increment — so an observed bucket
    /// sum can never exceed the observed count, even mid-run.
    #[inline]
    pub fn record(&self, v: u64) {
        let i = self.edges.partition_point(|&e| e < v);
        self.count.inc();
        self.sum.add(v);
        self.buckets[i].fetch_add(1, Ordering::Release);
    }

    /// Bucket upper bounds (the overflow bucket has no bound).
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket observation counts (`edges().len() + 1` entries; the
    /// last is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .collect()
    }

    /// Consistent point-in-time copy of `(buckets, count, sum)` safe to
    /// take while writers are recording: buckets are read first (with
    /// `Acquire`, pairing with [`Self::record`]'s `Release` bucket
    /// store), then count, then sum — guaranteeing `buckets.sum() <=
    /// count <= sum-observations` for any interleaving, and making two
    /// sequential snapshots monotone in every field.
    pub fn snapshot_consistent(&self) -> (Vec<u64>, u64, u64) {
        let buckets = self.bucket_counts();
        let count = self.count();
        let sum = self.sum();
        (buckets, count, sum)
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Mean observed value (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`); `u64::MAX` when it lands in the overflow bucket,
    /// 0 when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return self.edges.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// The eight instrumented PHY stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// CRC24A attach (tx) and check (rx).
    Crc,
    /// Transport-block segmentation and desegmentation.
    Segment,
    /// Turbo encoding.
    Encode,
    /// Rate matching (tx) and de-rate-matching (rx).
    RateMatch,
    /// Scrambling + symbol mapping (tx only).
    Modulate,
    /// OFDM modulation/demodulation and the channel model.
    Ofdm,
    /// Soft demapping + LLR descrambling (rx front end) — kept
    /// distinct from [`Stage::Modulate`] so the flight recorder never
    /// conflates tx modulation with rx demap.
    Demap,
    /// The data-arrangement process (the paper's subject).
    Arrange,
    /// Turbo decoding.
    Decode,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 9;
    /// All stages in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Crc,
        Stage::Segment,
        Stage::Encode,
        Stage::RateMatch,
        Stage::Modulate,
        Stage::Ofdm,
        Stage::Demap,
        Stage::Arrange,
        Stage::Decode,
    ];

    /// Snake-case name used in snapshot keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Crc => "crc",
            Stage::Segment => "segment",
            Stage::Encode => "encode",
            Stage::RateMatch => "rate_match",
            Stage::Modulate => "modulate",
            Stage::Ofdm => "ofdm",
            Stage::Demap => "demap",
            Stage::Arrange => "arrange",
            Stage::Decode => "decode",
        }
    }
}

/// Per-stage latency histograms and packet counters for the uplink
/// pipeline.
#[derive(Debug)]
pub struct PipelineMetrics {
    enabled: bool,
    stages: [Histogram; Stage::COUNT],
    /// Arrangement-stage latency when the fused APCM ingest ran —
    /// recorded *in addition to* [`Stage::Arrange`] so dashboards keep
    /// one continuous arrange series while the fused-vs-unfused split
    /// stays visible.
    arrange_fused: Histogram,
    /// Demap share of [`Stage::Demap`] when the native SIMD front end
    /// ran (fixed-point kernel time only, excluding descramble).
    frontend_demap: Histogram,
    /// Descramble share of [`Stage::Demap`] when the native SIMD
    /// front end ran (word-parallel Gold + sign-select time).
    frontend_descramble: Histogram,
    /// Per-packet CRC kernel time when the table/clmul front end ran
    /// (recorded alongside [`Stage::Crc`]).
    frontend_crc: Histogram,
    /// Packets processed.
    pub packets: Counter,
    /// Packets that round-tripped bit-exactly.
    pub ok_packets: Counter,
    /// Turbo-decoder iterations, summed over code blocks.
    pub decoder_iterations: Counter,
    /// Code blocks processed.
    pub code_blocks: Counter,
    /// Decoder-scratch buffer growths (heap allocations in the hot
    /// decode loop).
    pub decode_scratch_allocs: Counter,
    /// Decoder-scratch acquisitions served entirely from retained
    /// capacity (heap allocations avoided).
    pub decode_scratch_reuses: Counter,
    /// Failed packets by [`ErrorCategory`] (indexed by discriminant).
    pub errors: [Counter; ErrorCategory::COUNT],
    /// Code blocks whose decoder iteration budget was clamped by the
    /// per-packet deadline.
    pub deadline_clamps: Counter,
    /// Native→Scalar backend degradations after repeated decode
    /// failures.
    pub backend_degradations: Counter,
    /// Degraded pipelines restored to the Native backend after
    /// sustained success.
    pub backend_restorations: Counter,
    /// Packets that requested the Native backend but ran the scalar
    /// SISO kernel because no SIMD ISA level was available.
    pub native_simd_fallbacks: Counter,
    /// Packets that requested the Packed encoder backend but ran the
    /// portable `u64` kernel because no SIMD ISA level was available
    /// (transmit-side counterpart of `native_simd_fallbacks`).
    pub packed_encoder_fallbacks: Counter,
    /// Packets that requested batched Native decoding but ran the
    /// narrower pair/single kernels because the host (or the test ISA
    /// ceiling) lacks AVX-512BW — the quad-in-zmm tier degraded.
    pub batch_simd_fallbacks: Counter,
    /// Packets that requested the Packed encoder backend but ran a
    /// sub-512-bit kernel because the host (or the test ISA ceiling)
    /// lacks AVX-512BW — the zmm encoder tier degraded.
    pub zmm_encoder_fallbacks: Counter,
    /// Circuit-breaker trips (a protected stage opened after
    /// consecutive errors, or a half-open probe failed).
    pub breaker_trips: Counter,
    /// Circuit-breaker resets (a half-open probe succeeded and closed
    /// the breaker).
    pub breaker_resets: Counter,
    /// Packets fast-failed by an open breaker without running the
    /// protected stages.
    pub breaker_fastfails: Counter,
    /// AMC divergence-guard MCS step-downs under sustained decode
    /// failure (see [`crate::amc::DivergenceGuard`]).
    pub amc_stepdowns: Counter,
    /// LLR staging buffers acquired by allocating fresh `SoftStreams`
    /// (the pool was empty — expected only during warm-up).
    pub staging_allocs: Counter,
    /// LLR staging buffers served from the pool with retained capacity
    /// (zero heap traffic — the steady state).
    pub staging_reuses: Counter,
    /// Pooled LLR staging buffers whose capacity had to grow for a new
    /// block size K (a heap reallocation despite pooling).
    pub staging_reallocs: Counter,
    /// Code blocks staged through the fused demap→zmm APCM ingest
    /// (de-rate-match straight into decoder-layout streams).
    pub fused_ingest_blocks: Counter,
    /// Code blocks that requested fused ingest but fell back to the
    /// unfused demap → de-rate-match → deinterleave chain.
    pub fused_ingest_fallbacks: Counter,
    /// Packets that ran the native SIMD front end (fixed-point demap +
    /// word-parallel descramble + table/clmul CRC).
    pub frontend_packets: Counter,
    /// Packets that requested the SIMD front end but ran one or more
    /// scalar front-end kernels because no vector ISA level was
    /// available (the front-end tier degraded).
    pub frontend_fallbacks: Counter,
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new(true)
    }
}

impl PipelineMetrics {
    /// New registry; `enabled = false` makes every record a no-op.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            stages: std::array::from_fn(|_| Histogram::latency_ns()),
            arrange_fused: Histogram::latency_ns(),
            frontend_demap: Histogram::latency_ns(),
            frontend_descramble: Histogram::latency_ns(),
            frontend_crc: Histogram::latency_ns(),
            packets: Counter::new(),
            ok_packets: Counter::new(),
            decoder_iterations: Counter::new(),
            code_blocks: Counter::new(),
            decode_scratch_allocs: Counter::new(),
            decode_scratch_reuses: Counter::new(),
            errors: std::array::from_fn(|_| Counter::new()),
            deadline_clamps: Counter::new(),
            backend_degradations: Counter::new(),
            backend_restorations: Counter::new(),
            native_simd_fallbacks: Counter::new(),
            packed_encoder_fallbacks: Counter::new(),
            batch_simd_fallbacks: Counter::new(),
            zmm_encoder_fallbacks: Counter::new(),
            breaker_trips: Counter::new(),
            breaker_resets: Counter::new(),
            breaker_fastfails: Counter::new(),
            amc_stepdowns: Counter::new(),
            staging_allocs: Counter::new(),
            staging_reuses: Counter::new(),
            staging_reallocs: Counter::new(),
            fused_ingest_blocks: Counter::new(),
            fused_ingest_fallbacks: Counter::new(),
            frontend_packets: Counter::new(),
            frontend_fallbacks: Counter::new(),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one stage latency (no-op when disabled).
    #[inline]
    pub fn record_stage(&self, stage: Stage, nanos: u64) {
        if self.enabled {
            self.stages[stage as usize].record(nanos);
        }
    }

    /// Record packet-level outcome (no-op when disabled).
    pub fn record_packet(&self, ok: bool, code_blocks: usize, decoder_iterations: usize) {
        if !self.enabled {
            return;
        }
        self.packets.inc();
        if ok {
            self.ok_packets.inc();
        }
        self.code_blocks.add(code_blocks as u64);
        self.decoder_iterations.add(decoder_iterations as u64);
    }

    /// Record decoder-scratch acquisition outcomes for one packet
    /// (no-op when disabled).
    pub fn record_scratch(&self, allocs: u64, reuses: u64) {
        if !self.enabled {
            return;
        }
        self.decode_scratch_allocs.add(allocs);
        self.decode_scratch_reuses.add(reuses);
    }

    /// Count one failed packet under its error category (no-op when
    /// disabled).
    #[inline]
    pub fn record_error(&self, category: ErrorCategory) {
        if self.enabled {
            self.errors[category as usize].inc();
        }
    }

    /// Failed-packet count for one category.
    pub fn error_count(&self, category: ErrorCategory) -> u64 {
        self.errors[category as usize].get()
    }

    /// The histogram behind one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage as usize]
    }

    /// The fused-ingest arrangement histogram (recorded alongside
    /// [`Stage::Arrange`] when the fused path ran).
    pub fn arrange_fused(&self) -> &Histogram {
        &self.arrange_fused
    }

    /// Record one fused-ingest arrangement latency: lands in both the
    /// [`Stage::Arrange`] series and the fused-only histogram (no-op
    /// when disabled).
    #[inline]
    pub fn record_arrange_fused(&self, nanos: u64) {
        if self.enabled {
            self.stages[Stage::Arrange as usize].record(nanos);
            self.arrange_fused.record(nanos);
        }
    }

    /// The SIMD-front-end demap histogram (the demap share of
    /// [`Stage::Demap`] when the native tier ran).
    pub fn frontend_demap(&self) -> &Histogram {
        &self.frontend_demap
    }

    /// The SIMD-front-end descramble histogram.
    pub fn frontend_descramble(&self) -> &Histogram {
        &self.frontend_descramble
    }

    /// The SIMD-front-end CRC histogram.
    pub fn frontend_crc(&self) -> &Histogram {
        &self.frontend_crc
    }

    /// Record one SIMD-front-end demap+descramble split (no-op when
    /// disabled). The combined total also lands in [`Stage::Demap`]
    /// via the pipeline's stage timer, mirroring the `arrange_fused`
    /// convention of per-tier histograms riding alongside the stage
    /// series.
    #[inline]
    pub fn record_frontend_demap(&self, demap_ns: u64, descramble_ns: u64) {
        if self.enabled {
            self.frontend_demap.record(demap_ns);
            self.frontend_descramble.record(descramble_ns);
        }
    }

    /// Record one SIMD-front-end CRC kernel latency (no-op when
    /// disabled).
    #[inline]
    pub fn record_frontend_crc(&self, nanos: u64) {
        if self.enabled {
            self.frontend_crc.record(nanos);
        }
    }

    /// Flat snapshot: stage means/p90s plus counters.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for s in Stage::ALL {
            let h = self.stage(s);
            out.push((format!("stage.{}.mean_ns", s.name()), h.mean()));
            out.push((format!("stage.{}.count", s.name()), h.count() as f64));
        }
        out.push((
            "stage.arrange_fused.mean_ns".into(),
            self.arrange_fused.mean(),
        ));
        out.push((
            "stage.arrange_fused.count".into(),
            self.arrange_fused.count() as f64,
        ));
        for (name, h) in [
            ("frontend_demap", &self.frontend_demap),
            ("frontend_descramble", &self.frontend_descramble),
            ("frontend_crc", &self.frontend_crc),
        ] {
            out.push((format!("stage.{name}.mean_ns"), h.mean()));
            out.push((format!("stage.{name}.count"), h.count() as f64));
        }
        out.push(("packets".into(), self.packets.get() as f64));
        out.push(("ok_packets".into(), self.ok_packets.get() as f64));
        out.push(("code_blocks".into(), self.code_blocks.get() as f64));
        out.push((
            "decoder_iterations".into(),
            self.decoder_iterations.get() as f64,
        ));
        out.push((
            "decode_scratch_allocs".into(),
            self.decode_scratch_allocs.get() as f64,
        ));
        out.push((
            "decode_scratch_reuses".into(),
            self.decode_scratch_reuses.get() as f64,
        ));
        for c in ErrorCategory::ALL {
            out.push((format!("error.{}", c.name()), self.error_count(c) as f64));
        }
        out.push(("deadline_clamps".into(), self.deadline_clamps.get() as f64));
        out.push((
            "backend_degradations".into(),
            self.backend_degradations.get() as f64,
        ));
        out.push((
            "backend_restorations".into(),
            self.backend_restorations.get() as f64,
        ));
        out.push((
            "native_simd_fallbacks".into(),
            self.native_simd_fallbacks.get() as f64,
        ));
        out.push((
            "packed_encoder_fallbacks".into(),
            self.packed_encoder_fallbacks.get() as f64,
        ));
        out.push((
            "batch_simd_fallbacks".into(),
            self.batch_simd_fallbacks.get() as f64,
        ));
        out.push((
            "zmm_encoder_fallbacks".into(),
            self.zmm_encoder_fallbacks.get() as f64,
        ));
        out.push(("breaker_trips".into(), self.breaker_trips.get() as f64));
        out.push(("breaker_resets".into(), self.breaker_resets.get() as f64));
        out.push((
            "breaker_fastfails".into(),
            self.breaker_fastfails.get() as f64,
        ));
        out.push(("amc_stepdowns".into(), self.amc_stepdowns.get() as f64));
        out.push(("staging_allocs".into(), self.staging_allocs.get() as f64));
        out.push(("staging_reuses".into(), self.staging_reuses.get() as f64));
        out.push((
            "staging_reallocs".into(),
            self.staging_reallocs.get() as f64,
        ));
        out.push((
            "fused_ingest_blocks".into(),
            self.fused_ingest_blocks.get() as f64,
        ));
        out.push((
            "fused_ingest_fallbacks".into(),
            self.fused_ingest_fallbacks.get() as f64,
        ));
        out.push((
            "frontend_packets".into(),
            self.frontend_packets.get() as f64,
        ));
        out.push((
            "frontend_fallbacks".into(),
            self.frontend_fallbacks.get() as f64,
        ));
        out
    }

    /// Snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        snapshot_json(self.snapshot())
    }
}

/// Ring-occupancy and stall metrics for the threaded runner.
#[derive(Debug)]
pub struct RunnerMetrics {
    enabled: bool,
    /// Uplink-ring occupancy sampled at each worker pop.
    pub ring_occupancy: Histogram,
    /// Producer spins on a full ring.
    pub push_stalls: Counter,
    /// Consumer spins on an empty ring.
    pub pop_stalls: Counter,
    /// Packets completing the pipeline.
    pub packets: Counter,
    /// Wire bytes completing the pipeline.
    pub wire_bytes: Counter,
    /// Worker restarts after an isolated panic (each restart rebuilds
    /// the worker's pipeline state).
    pub worker_restarts: Counter,
    /// Packets quarantined because processing them panicked.
    pub quarantined: Counter,
}

impl Default for RunnerMetrics {
    fn default() -> Self {
        Self::new(true, 256)
    }
}

impl RunnerMetrics {
    /// New registry for rings of `ring_capacity` slots.
    pub fn new(enabled: bool, ring_capacity: usize) -> Self {
        Self {
            enabled,
            ring_occupancy: Histogram::occupancy(ring_capacity),
            push_stalls: Counter::new(),
            pop_stalls: Counter::new(),
            packets: Counter::new(),
            wire_bytes: Counter::new(),
            worker_restarts: Counter::new(),
            quarantined: Counter::new(),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sample ring occupancy (no-op when disabled).
    #[inline]
    pub fn record_occupancy(&self, len: usize) {
        if self.enabled {
            self.ring_occupancy.record(len as u64);
        }
    }

    /// Count one full-ring producer spin (no-op when disabled).
    #[inline]
    pub fn record_push_stall(&self) {
        if self.enabled {
            self.push_stalls.inc();
        }
    }

    /// Count one empty-ring consumer spin (no-op when disabled).
    #[inline]
    pub fn record_pop_stall(&self) {
        if self.enabled {
            self.pop_stalls.inc();
        }
    }

    /// Record one completed packet (no-op when disabled).
    #[inline]
    pub fn record_packet(&self, wire_len: usize) {
        if self.enabled {
            self.packets.inc();
            self.wire_bytes.add(wire_len as u64);
        }
    }

    /// Record one worker restart after an isolated panic (no-op when
    /// disabled).
    #[inline]
    pub fn record_worker_restart(&self) {
        if self.enabled {
            self.worker_restarts.inc();
        }
    }

    /// Record one quarantined (panic-inducing) packet (no-op when
    /// disabled).
    #[inline]
    pub fn record_quarantine(&self) {
        if self.enabled {
            self.quarantined.inc();
        }
    }

    /// Flat snapshot.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        vec![
            ("ring.occupancy.mean".into(), self.ring_occupancy.mean()),
            (
                "ring.occupancy.samples".into(),
                self.ring_occupancy.count() as f64,
            ),
            ("ring.push_stalls".into(), self.push_stalls.get() as f64),
            ("ring.pop_stalls".into(), self.pop_stalls.get() as f64),
            ("packets".into(), self.packets.get() as f64),
            ("wire_bytes".into(), self.wire_bytes.get() as f64),
            ("worker_restarts".into(), self.worker_restarts.get() as f64),
            ("quarantined".into(), self.quarantined.get() as f64),
        ]
    }

    /// Snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        snapshot_json(self.snapshot())
    }
}

/// Batch-formation counters for the out-of-order stage-graph runtime
/// ([`crate::stagegraph::StageGraph`]): how decode tasks actually
/// launched (quad-in-zmm / pair-in-ymm / single leftover) and why each
/// pool flushed. The headline figure is [`Self::lane_occupancy`] — the
/// fraction of code blocks that rode a full quad launch, i.e. how often
/// the AVX-512BW lanes were actually full.
#[derive(Debug)]
pub struct StageGraphMetrics {
    enabled: bool,
    /// Code blocks decoded as part of a full quad-in-zmm launch.
    pub quad_blocks: Counter,
    /// Code blocks decoded as part of a pair-in-ymm launch.
    pub pair_blocks: Counter,
    /// Code blocks decoded alone (pool remainder below pair width).
    pub single_blocks: Counter,
    /// Pool flushes because four same-K tasks filled the zmm lanes.
    pub flush_lanes_full: Counter,
    /// Pool flushes because a member packet's deadline (or age bound)
    /// neared — partial launch rather than a blown budget.
    pub flush_deadline: Counter,
    /// Pool flushes at end-of-run drain (no more admissions coming).
    pub flush_drain: Counter,
}

impl Default for StageGraphMetrics {
    fn default() -> Self {
        Self::new(true)
    }
}

impl StageGraphMetrics {
    /// New registry.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            quad_blocks: Counter::new(),
            pair_blocks: Counter::new(),
            single_blocks: Counter::new(),
            flush_lanes_full: Counter::new(),
            flush_deadline: Counter::new(),
            flush_drain: Counter::new(),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one batch launch of `blocks` equal-K tasks (4 = quad,
    /// 2 = pair, 1 = single). No-op when disabled.
    #[inline]
    pub fn record_launch(&self, blocks: usize) {
        if self.enabled {
            match blocks {
                4 => self.quad_blocks.add(4),
                2 => self.pair_blocks.add(2),
                _ => self.single_blocks.add(blocks as u64),
            }
        }
    }

    /// Record one pool flush with its reason. No-op when disabled.
    #[inline]
    pub fn record_flush(&self, reason: crate::stagegraph::FlushReason) {
        if self.enabled {
            match reason {
                crate::stagegraph::FlushReason::LanesFull => self.flush_lanes_full.inc(),
                crate::stagegraph::FlushReason::Deadline => self.flush_deadline.inc(),
                crate::stagegraph::FlushReason::Drain => self.flush_drain.inc(),
            }
        }
    }

    /// Fraction of decoded code blocks that launched in a full quad —
    /// the zmm lane-occupancy figure the stage graph exists to raise.
    /// `NaN`-free: returns 0.0 before any block decodes.
    pub fn lane_occupancy(&self) -> f64 {
        let quad = self.quad_blocks.get() as f64;
        let total = quad + self.pair_blocks.get() as f64 + self.single_blocks.get() as f64;
        if total == 0.0 {
            0.0
        } else {
            quad / total
        }
    }

    /// Flat snapshot (benchgate schema: `.ratio` ⇒ ratio tolerance,
    /// `.count` ⇒ exact).
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        vec![
            ("batch.lane_occupancy.ratio".into(), self.lane_occupancy()),
            (
                "batch.quad_blocks.count".into(),
                self.quad_blocks.get() as f64,
            ),
            (
                "batch.pair_blocks.count".into(),
                self.pair_blocks.get() as f64,
            ),
            (
                "batch.single_blocks.count".into(),
                self.single_blocks.get() as f64,
            ),
            (
                "batch.flush.lanes_full.count".into(),
                self.flush_lanes_full.get() as f64,
            ),
            (
                "batch.flush.deadline.count".into(),
                self.flush_deadline.get() as f64,
            ),
            (
                "batch.flush.drain.count".into(),
                self.flush_drain.get() as f64,
            ),
        ]
    }

    /// Snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        snapshot_json(self.snapshot())
    }
}

/// Cycle and port-pressure counters accumulated from `vran-uarch`
/// simulator runs, so micro-architectural metrics share the snapshot
/// namespace with wall-clock ones.
#[derive(Debug)]
pub struct UarchMetrics {
    enabled: bool,
    /// Simulator runs ingested.
    pub runs: Counter,
    /// Simulated core cycles.
    pub cycles: Counter,
    /// µops dispatched.
    pub uops: Counter,
    /// Instructions retired.
    pub instructions: Counter,
    /// Busy cycles per execution port.
    pub port_busy: [Counter; Port::COUNT],
}

impl Default for UarchMetrics {
    fn default() -> Self {
        Self::new(true)
    }
}

impl UarchMetrics {
    /// New registry.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            runs: Counter::new(),
            cycles: Counter::new(),
            uops: Counter::new(),
            instructions: Counter::new(),
            port_busy: std::array::from_fn(|_| Counter::new()),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Fold one simulator report into the totals (no-op when
    /// disabled).
    pub fn record_report(&self, r: &SimReport) {
        if !self.enabled {
            return;
        }
        self.runs.inc();
        self.cycles.add(r.cycles);
        self.uops.add(r.uops);
        self.instructions.add(r.instructions);
        for (c, &b) in self.port_busy.iter().zip(r.port_busy.iter()) {
            c.add(b);
        }
    }

    /// Aggregate µops per cycle across all ingested runs.
    pub fn upc(&self) -> f64 {
        let c = self.cycles.get();
        if c == 0 {
            0.0
        } else {
            self.uops.get() as f64 / c as f64
        }
    }

    /// Port pressure: busy fraction of total cycles, per port.
    pub fn port_pressure(&self) -> [f64; Port::COUNT] {
        let c = self.cycles.get().max(1) as f64;
        std::array::from_fn(|p| self.port_busy[p].get() as f64 / c)
    }

    /// Flat snapshot.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut out = vec![
            ("runs".into(), self.runs.get() as f64),
            ("cycles".into(), self.cycles.get() as f64),
            ("uops".into(), self.uops.get() as f64),
            ("instructions".into(), self.instructions.get() as f64),
            ("upc".into(), self.upc()),
        ];
        for (p, pressure) in self.port_pressure().iter().enumerate() {
            out.push((format!("port{p}.pressure"), *pressure));
        }
        out
    }

    /// Snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        snapshot_json(self.snapshot())
    }
}

/// Build an insertion-ordered JSON object from a flat snapshot.
fn snapshot_json(entries: Vec<(String, f64)>) -> Json {
    Json::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k, Json::Num(v)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_wraps() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), 41, "hardware-counter wraparound, not saturation");
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(vec![10, 100, 1000]);
        for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            h.record(v);
        }
        // buckets: ≤10, ≤100, ≤1000, overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::new(vec![10, 100, 1000]);
        assert_eq!(h.quantile_upper(0.5), 0, "empty histogram");
        for v in [5, 5, 50, 500] {
            h.record(v);
        }
        assert!((h.mean() - 140.0).abs() < 1e-9);
        assert_eq!(h.quantile_upper(0.5), 10);
        assert_eq!(h.quantile_upper(1.0), 1000);
        h.record(5000);
        assert_eq!(
            h.quantile_upper(1.0),
            u64::MAX,
            "overflow bucket has no bound"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn histogram_rejects_unsorted_edges() {
        Histogram::new(vec![10, 10]);
    }

    #[test]
    fn latency_grid_covers_stage_timescales() {
        let h = Histogram::latency_ns();
        assert_eq!(h.edges().first(), Some(&256));
        assert_eq!(h.edges().last(), Some(&(1 << 23)));
    }

    #[test]
    fn occupancy_grid_reaches_capacity() {
        let h = Histogram::occupancy(256);
        assert_eq!(h.edges(), &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256]);
    }

    #[test]
    fn disabled_registries_record_nothing() {
        let p = PipelineMetrics::new(false);
        p.record_stage(Stage::Decode, 999);
        p.record_packet(true, 3, 12);
        assert_eq!(p.stage(Stage::Decode).count(), 0);
        assert_eq!(p.packets.get(), 0);

        let r = RunnerMetrics::new(false, 256);
        r.record_occupancy(7);
        r.record_push_stall();
        r.record_pop_stall();
        r.record_packet(128);
        assert_eq!(r.ring_occupancy.count(), 0);
        assert_eq!(
            r.push_stalls.get() + r.pop_stalls.get() + r.packets.get(),
            0
        );

        let u = UarchMetrics::new(false);
        u.record_report(&SimReport::default());
        assert_eq!(u.runs.get(), 0);
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        assert_eq!(names, dedup);
        assert_eq!(names[0], "crc");
        assert_eq!(names[Stage::COUNT - 1], "decode");
    }

    #[test]
    fn snapshots_flatten_to_numbers() {
        let p = PipelineMetrics::new(true);
        p.record_stage(Stage::Arrange, 512);
        p.record_packet(true, 1, 4);
        let snap = p.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("stage.arrange.count"), Some(1.0));
        assert_eq!(get("stage.arrange.mean_ns"), Some(512.0));
        assert_eq!(get("packets"), Some(1.0));
        assert_eq!(get("ok_packets"), Some(1.0));
        // JSON round-trips through the flattener benchgate uses.
        let flat = p.to_json().flatten_numbers();
        assert_eq!(flat.get("stage.arrange.count"), Some(&1.0));
    }

    #[test]
    fn error_counters_track_categories_independently() {
        let p = PipelineMetrics::new(true);
        p.record_error(ErrorCategory::MalformedFrame);
        p.record_error(ErrorCategory::MalformedFrame);
        p.record_error(ErrorCategory::DecoderDiverged);
        assert_eq!(p.error_count(ErrorCategory::MalformedFrame), 2);
        assert_eq!(p.error_count(ErrorCategory::DecoderDiverged), 1);
        assert_eq!(p.error_count(ErrorCategory::DeadlineExceeded), 0);
        let snap = p.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("error.malformed_frame"), Some(2.0));
        assert_eq!(get("error.decoder_diverged"), Some(1.0));
        assert_eq!(get("deadline_clamps"), Some(0.0));
        assert_eq!(get("backend_degradations"), Some(0.0));
        assert_eq!(get("native_simd_fallbacks"), Some(0.0));

        // Disabled registry records nothing.
        let off = PipelineMetrics::new(false);
        off.record_error(ErrorCategory::CrcMismatch);
        assert_eq!(off.error_count(ErrorCategory::CrcMismatch), 0);

        let r = RunnerMetrics::new(true, 16);
        r.record_worker_restart();
        r.record_quarantine();
        let snap = r.snapshot();
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("worker_restarts"), Some(1.0));
        assert_eq!(get("quarantined"), Some(1.0));
    }

    #[test]
    fn uarch_metrics_accumulate_reports() {
        let u = UarchMetrics::new(true);
        let mut port_busy = [0u64; Port::COUNT];
        port_busy[0] = 80;
        let rep = SimReport {
            cycles: 100,
            uops: 250,
            instructions: 200,
            port_busy,
            ..Default::default()
        };
        u.record_report(&rep);
        u.record_report(&rep);
        assert_eq!(u.runs.get(), 2);
        assert_eq!(u.cycles.get(), 200);
        assert!((u.upc() - 2.5).abs() < 1e-12);
        assert!((u.port_pressure()[0] - 0.8).abs() < 1e-12);
        assert_eq!(u.port_pressure()[7], 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::latency_ns();
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000 {
                        h.record(i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(c.get(), 4000);
    }
}
