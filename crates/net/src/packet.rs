//! Ethernet / IPv4 / UDP / TCP framing with real checksums.
//!
//! The paper's Figure 13 sweeps "packet size" for UDP and TCP flows;
//! these builders produce byte-accurate frames so the transport-block
//! sizes (and hence PHY work) are faithful to what the OAI testbed
//! would carry.

/// Ethernet header length.
pub const ETH_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_LEN: usize = 20;
/// UDP header length.
pub const UDP_LEN: usize = 8;
/// TCP header length (no options).
pub const TCP_LEN: usize = 20;

/// Transport protocol of a generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// UDP datagrams.
    Udp,
    /// TCP segments (the model also accounts an ACK in the reverse
    /// direction — see `pipeline`).
    Tcp,
}

impl Transport {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Transport::Udp => "UDP",
            Transport::Tcp => "TCP",
        }
    }

    /// L4 header bytes.
    pub const fn header_len(self) -> usize {
        match self {
            Transport::Udp => UDP_LEN,
            Transport::Tcp => TCP_LEN,
        }
    }

    /// IPv4 protocol number.
    const fn proto(self) -> u8 {
        match self {
            Transport::Udp => 17,
            Transport::Tcp => 6,
        }
    }
}

/// A fully framed packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The raw frame bytes (Ethernet onward).
    pub frame: Vec<u8>,
    /// Transport protocol.
    pub transport: Transport,
    /// Application payload length.
    pub payload_len: usize,
}

/// RFC 1071 ones-complement checksum.
fn checksum16(data: &[u8], seed: u32) -> u16 {
    let mut sum = seed;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [b] = chunks.remainder() {
        sum += (*b as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builder for one flow's packets.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ident: u16,
}

impl PacketBuilder {
    /// New flow between fixed synthetic endpoints.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        Self {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port,
            dst_port,
            seq: 0,
            ident: 0,
        }
    }

    /// Build a frame whose **total wire length** (Ethernet..payload) is
    /// `wire_len`, the quantity Figure 13's x-axis sweeps. Returns
    /// `None` when `wire_len` cannot fit the headers.
    pub fn build(&mut self, transport: Transport, wire_len: usize) -> Option<Packet> {
        let overhead = ETH_LEN + IPV4_LEN + transport.header_len();
        let payload_len = wire_len.checked_sub(overhead)?;
        let payload: Vec<u8> = (0..payload_len)
            .map(|i| (i as u8).wrapping_mul(31))
            .collect();
        let ip_len = IPV4_LEN + transport.header_len() + payload_len;

        let mut buf: Vec<u8> = Vec::with_capacity(wire_len);
        // Ethernet
        buf.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x01]); // dst MAC
        buf.extend_from_slice(&[0x02, 0, 0, 0, 0, 0x02]); // src MAC
        buf.extend_from_slice(&0x0800u16.to_be_bytes());
        // IPv4
        let mut ip: Vec<u8> = Vec::with_capacity(IPV4_LEN);
        ip.push(0x45);
        ip.push(0);
        ip.extend_from_slice(&(ip_len as u16).to_be_bytes());
        ip.extend_from_slice(&self.ident.to_be_bytes());
        ip.extend_from_slice(&0x4000u16.to_be_bytes()); // DF
        ip.push(64);
        ip.push(transport.proto());
        ip.extend_from_slice(&[0, 0]); // checksum placeholder
        ip.extend_from_slice(&self.src_ip);
        ip.extend_from_slice(&self.dst_ip);
        let csum = checksum16(&ip, 0);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.extend_from_slice(&ip);
        // L4
        let pseudo = {
            let mut p = 0u32;
            for pair in self.src_ip.chunks(2).chain(self.dst_ip.chunks(2)) {
                p += u16::from_be_bytes([pair[0], pair[1]]) as u32;
            }
            p += transport.proto() as u32;
            p += (transport.header_len() + payload_len) as u32;
            p
        };
        match transport {
            Transport::Udp => {
                let mut udp: Vec<u8> = Vec::with_capacity(UDP_LEN + payload_len);
                udp.extend_from_slice(&self.src_port.to_be_bytes());
                udp.extend_from_slice(&self.dst_port.to_be_bytes());
                udp.extend_from_slice(&((UDP_LEN + payload_len) as u16).to_be_bytes());
                udp.extend_from_slice(&[0, 0]); // checksum placeholder
                udp.extend_from_slice(&payload);
                let csum = checksum16(&udp, pseudo);
                udp[6..8].copy_from_slice(&csum.to_be_bytes());
                buf.extend_from_slice(&udp);
            }
            Transport::Tcp => {
                let mut tcp: Vec<u8> = Vec::with_capacity(TCP_LEN + payload_len);
                tcp.extend_from_slice(&self.src_port.to_be_bytes());
                tcp.extend_from_slice(&self.dst_port.to_be_bytes());
                tcp.extend_from_slice(&self.seq.to_be_bytes());
                tcp.extend_from_slice(&0u32.to_be_bytes()); // ack
                tcp.push(0x50); // data offset 5
                tcp.push(0x18); // PSH|ACK
                tcp.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
                tcp.extend_from_slice(&[0, 0]); // checksum placeholder
                tcp.extend_from_slice(&[0, 0]); // urgent
                tcp.extend_from_slice(&payload);
                let csum = checksum16(&tcp, pseudo);
                tcp[16..18].copy_from_slice(&csum.to_be_bytes());
                buf.extend_from_slice(&tcp);
                self.seq = self.seq.wrapping_add(payload_len as u32);
            }
        }
        self.ident = self.ident.wrapping_add(1);
        Some(Packet {
            frame: buf,
            transport,
            payload_len,
        })
    }
}

/// Verify the IPv4 header checksum of a frame built by
/// [`PacketBuilder`].
pub fn verify_ipv4_checksum(frame: &[u8]) -> bool {
    if frame.len() < ETH_LEN + IPV4_LEN {
        return false;
    }
    checksum16(&frame[ETH_LEN..ETH_LEN + IPV4_LEN], 0) == 0
}

/// Why a frame failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Shorter than the minimum header stack.
    Truncated,
    /// Not IPv4-over-Ethernet.
    NotIpv4,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// Unsupported L4 protocol number.
    UnknownProtocol,
    /// L4 checksum (incl. pseudo-header) mismatch.
    BadL4Checksum,
    /// IPv4 total-length disagrees with the frame.
    BadLength,
}

/// Parsed view of a frame produced by [`PacketBuilder`] (or any
/// well-formed Ethernet/IPv4/UDP|TCP frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Transport protocol.
    pub transport: Transport,
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload bytes.
    pub payload: Vec<u8>,
}

impl ParsedPacket {
    /// Parse and fully validate a frame (both checksums, lengths).
    pub fn parse(frame: &[u8]) -> Result<Self, ParseError> {
        if frame.len() < ETH_LEN + IPV4_LEN + UDP_LEN {
            return Err(ParseError::Truncated);
        }
        if frame[12..14] != [0x08, 0x00] {
            return Err(ParseError::NotIpv4);
        }
        let ip = &frame[ETH_LEN..];
        if ip[0] != 0x45 {
            return Err(ParseError::NotIpv4); // options unsupported
        }
        if checksum16(&ip[..IPV4_LEN], 0) != 0 {
            return Err(ParseError::BadIpChecksum);
        }
        let ip_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
        if ip_len + ETH_LEN != frame.len() {
            return Err(ParseError::BadLength);
        }
        let transport = match ip[9] {
            17 => Transport::Udp,
            6 => Transport::Tcp,
            _ => return Err(ParseError::UnknownProtocol),
        };
        let l4 = &ip[IPV4_LEN..ip_len];
        if l4.len() < transport.header_len() {
            return Err(ParseError::Truncated);
        }
        // pseudo-header checksum over the whole segment
        let mut pseudo = 0u32;
        for pair in ip[12..20].chunks(2) {
            pseudo += u16::from_be_bytes([pair[0], pair[1]]) as u32;
        }
        pseudo += transport.proto() as u32 + l4.len() as u32;
        if checksum16(l4, pseudo) != 0 {
            return Err(ParseError::BadL4Checksum);
        }
        Ok(Self {
            transport,
            src_ip: ip[12..16].try_into().expect("fixed slice"),
            dst_ip: ip[16..20].try_into().expect("fixed slice"),
            src_port: u16::from_be_bytes([l4[0], l4[1]]),
            dst_port: u16::from_be_bytes([l4[2], l4[3]]),
            payload: l4[transport.header_len()..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_length_matches_request() {
        let mut b = PacketBuilder::new(1000, 2000);
        for size in [64usize, 256, 512, 1024, 1500] {
            for t in [Transport::Udp, Transport::Tcp] {
                let p = b.build(t, size).unwrap();
                assert_eq!(p.frame.len(), size, "{} {size}", t.name());
            }
        }
    }

    #[test]
    fn too_small_returns_none() {
        let mut b = PacketBuilder::new(1, 2);
        assert!(b.build(Transport::Tcp, 40).is_none());
        assert!(b.build(Transport::Udp, 41).is_none()); // 42 B of headers
        assert!(b.build(Transport::Udp, 42).is_some());
    }

    #[test]
    fn ipv4_checksum_verifies() {
        let mut b = PacketBuilder::new(5060, 5060);
        let p = b.build(Transport::Udp, 200).unwrap();
        assert!(verify_ipv4_checksum(&p.frame));
        // corrupting any header byte must break it
        let mut bad = p.frame.to_vec();
        bad[ETH_LEN + 8] ^= 0xFF;
        assert!(!verify_ipv4_checksum(&bad));
    }

    #[test]
    fn udp_checksum_covers_payload() {
        let mut b = PacketBuilder::new(9, 9);
        let p = b.build(Transport::Udp, 128).unwrap();
        // recompute over pseudo-header + UDP segment: must be 0 (valid)
        let ip = &p.frame[ETH_LEN..ETH_LEN + IPV4_LEN];
        let seg = &p.frame[ETH_LEN + IPV4_LEN..];
        let mut pseudo = 0u32;
        for pair in ip[12..20].chunks(2) {
            pseudo += u16::from_be_bytes([pair[0], pair[1]]) as u32;
        }
        pseudo += 17 + seg.len() as u32;
        assert_eq!(checksum16(seg, pseudo), 0);
    }

    #[test]
    fn tcp_sequence_advances_by_payload() {
        let mut b = PacketBuilder::new(80, 8080);
        let p1 = b.build(Transport::Tcp, 100).unwrap();
        let p2 = b.build(Transport::Tcp, 100).unwrap();
        let seq = |p: &Packet| {
            u32::from_be_bytes(
                p.frame[ETH_LEN + IPV4_LEN + 4..ETH_LEN + IPV4_LEN + 8]
                    .try_into()
                    .unwrap(),
            )
        };
        assert_eq!(
            seq(&p2) - seq(&p1),
            (100 - ETH_LEN - IPV4_LEN - TCP_LEN) as u32
        );
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let mut b = PacketBuilder::new(5060, 8080);
        for t in [Transport::Udp, Transport::Tcp] {
            for size in [64usize, 300, 1500] {
                let p = b.build(t, size).unwrap();
                let parsed = ParsedPacket::parse(&p.frame).expect("valid frame");
                assert_eq!(parsed.transport, t);
                assert_eq!(parsed.src_port, 5060);
                assert_eq!(parsed.dst_port, 8080);
                assert_eq!(parsed.src_ip, [10, 0, 0, 1]);
                assert_eq!(parsed.payload.len(), p.payload_len);
            }
        }
    }

    #[test]
    fn parse_rejects_corruption_anywhere() {
        let mut b = PacketBuilder::new(1, 2);
        let p = b.build(Transport::Udp, 100).unwrap();
        // Flipping any single byte from the EtherType onward must be
        // caught (headers by checksums/structure, payload by the UDP
        // checksum). MAC addresses are only protected by the Ethernet
        // FCS, which this model does not carry.
        for i in 12..p.frame.len() {
            let mut bad = p.frame.to_vec();
            bad[i] ^= 0x01;
            assert!(
                ParsedPacket::parse(&bad).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn parse_error_taxonomy() {
        let mut b = PacketBuilder::new(1, 2);
        let p = b.build(Transport::Udp, 100).unwrap().frame.to_vec();
        assert_eq!(ParsedPacket::parse(&p[..20]), Err(ParseError::Truncated));
        let mut not_ip = p.clone();
        not_ip[12] = 0x86; // IPv6 ethertype byte
        assert_eq!(ParsedPacket::parse(&not_ip), Err(ParseError::NotIpv4));
        let mut bad_proto = p.clone();
        bad_proto[ETH_LEN + 9] = 47; // GRE
                                     // fix the IP checksum so the protocol check is reached
        bad_proto[ETH_LEN + 10] = 0;
        bad_proto[ETH_LEN + 11] = 0;
        let csum = {
            let mut sum = 0u32;
            for c in bad_proto[ETH_LEN..ETH_LEN + IPV4_LEN].chunks(2) {
                sum += u16::from_be_bytes([c[0], c[1]]) as u32;
            }
            while sum >> 16 != 0 {
                sum = (sum & 0xFFFF) + (sum >> 16);
            }
            !(sum as u16)
        };
        bad_proto[ETH_LEN + 10..ETH_LEN + 12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(
            ParsedPacket::parse(&bad_proto),
            Err(ParseError::UnknownProtocol)
        );
        let mut short = p.clone();
        short.pop();
        assert_eq!(ParsedPacket::parse(&short), Err(ParseError::BadLength));
    }

    #[test]
    fn deterministic_payload() {
        let p1 = PacketBuilder::new(1, 2).build(Transport::Udp, 300).unwrap();
        let p2 = PacketBuilder::new(1, 2).build(Transport::Udp, 300).unwrap();
        assert_eq!(p1.frame, p2.frame);
    }
}
