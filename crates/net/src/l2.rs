//! Layer-2 lite: PDCP/RLC/MAC encapsulation between the IP packet and
//! the transport block — the L2 boxes of the paper's Figure 1 uplink
//! path ("MAC, RLC, PDCP" in the eNB container).
//!
//! Simplified but structurally faithful framing:
//!
//! * **PDCP**: 2-byte header (D/C flag + 12-bit sequence number).
//! * **RLC (AM)**: 2-byte header (framing info + 10-bit sequence
//!   number).
//! * **MAC**: subheader with LCID and 16-bit length + padding to the
//!   transport-block size.
//!
//! The decapsulation path validates every header field and the
//! sequence numbers, so corruption that somehow survived the PHY CRCs
//! is still caught.

/// PDCP + RLC + MAC header overhead in bytes.
pub const L2_OVERHEAD: usize = 2 + 2 + 3;

/// Sequence-number state for one radio bearer.
#[derive(Debug, Clone, Default)]
pub struct BearerTx {
    pdcp_sn: u16, // 12-bit
    rlc_sn: u16,  // 10-bit
}

/// Receiver-side bearer state.
#[derive(Debug, Clone, Default)]
pub struct BearerRx {
    expected_pdcp: u16,
    expected_rlc: u16,
}

/// Why decapsulation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Error {
    /// PDU shorter than the header stack.
    Truncated,
    /// Reserved/flag bits malformed.
    BadHeader,
    /// MAC length field disagrees with the SDU.
    BadLength,
    /// PDCP or RLC sequence number out of order.
    SequenceGap,
}

impl BearerTx {
    /// Encapsulate one IP packet into a MAC PDU padded to
    /// `tb_bytes` (which must fit the packet + overhead).
    pub fn encapsulate(&mut self, sdu: &[u8], tb_bytes: usize) -> Option<Vec<u8>> {
        let need = sdu.len() + L2_OVERHEAD;
        if tb_bytes < need || sdu.len() > 0xFFFF {
            return None;
        }
        let mut out: Vec<u8> = Vec::with_capacity(tb_bytes);
        // MAC subheader: LCID=3 (DTCH), F2=0, 16-bit length
        out.push(0x03);
        out.extend_from_slice(&((sdu.len() + 4) as u16).to_be_bytes()); // RLC+PDCP PDU length
                                                                        // RLC AM: D/C=1, P=0, FI=00, SN(10)
        out.extend_from_slice(&(0x8000 | (self.rlc_sn & 0x3FF)).to_be_bytes());
        self.rlc_sn = (self.rlc_sn + 1) & 0x3FF;
        // PDCP data PDU: D/C=1, SN(12)
        out.extend_from_slice(&(0x8000 | (self.pdcp_sn & 0xFFF)).to_be_bytes());
        self.pdcp_sn = (self.pdcp_sn + 1) & 0xFFF;
        out.extend_from_slice(sdu);
        // MAC padding
        out.resize(tb_bytes, 0);
        Some(out)
    }
}

impl BearerRx {
    /// Decapsulate a MAC PDU; returns the IP packet on success.
    pub fn decapsulate(&mut self, pdu: &[u8]) -> Result<Vec<u8>, L2Error> {
        if pdu.len() < L2_OVERHEAD {
            return Err(L2Error::Truncated);
        }
        if pdu[0] != 0x03 {
            return Err(L2Error::BadHeader);
        }
        let len = u16::from_be_bytes([pdu[1], pdu[2]]) as usize;
        if len < 4 || 3 + len > pdu.len() {
            return Err(L2Error::BadLength);
        }
        let rlc = u16::from_be_bytes([pdu[3], pdu[4]]);
        let pdcp = u16::from_be_bytes([pdu[5], pdu[6]]);
        if rlc & 0x8000 == 0 || pdcp & 0x8000 == 0 {
            return Err(L2Error::BadHeader);
        }
        if rlc & 0x3FF != self.expected_rlc || pdcp & 0xFFF != self.expected_pdcp {
            return Err(L2Error::SequenceGap);
        }
        self.expected_rlc = (self.expected_rlc + 1) & 0x3FF;
        self.expected_pdcp = (self.expected_pdcp + 1) & 0xFFF;
        // trailing MAC padding must be zero
        if pdu[3 + len..].iter().any(|&b| b != 0) {
            return Err(L2Error::BadLength);
        }
        Ok(pdu[7..3 + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_with_padding() {
        let mut tx = BearerTx::default();
        let mut rx = BearerRx::default();
        let sdu: Vec<u8> = (0..100).collect();
        let pdu = tx.encapsulate(&sdu, 128).unwrap();
        assert_eq!(pdu.len(), 128);
        assert_eq!(rx.decapsulate(&pdu).unwrap(), sdu);
    }

    #[test]
    fn sequence_numbers_advance_and_gaps_are_caught() {
        let mut tx = BearerTx::default();
        let mut rx = BearerRx::default();
        let sdu = vec![7u8; 20];
        let p0 = tx.encapsulate(&sdu, 64).unwrap();
        let p1 = tx.encapsulate(&sdu, 64).unwrap();
        let p2 = tx.encapsulate(&sdu, 64).unwrap();
        assert!(rx.decapsulate(&p0).is_ok());
        // dropping p1 must surface as a gap when p2 arrives
        assert_eq!(rx.decapsulate(&p2), Err(L2Error::SequenceGap));
        // after re-sync (receiving the missing one) order recovers
        assert!(rx.decapsulate(&p1).is_ok());
    }

    #[test]
    fn sn_wraparound() {
        let mut tx = BearerTx::default();
        let mut rx = BearerRx::default();
        let sdu = vec![1u8; 4];
        for _ in 0..1030 {
            // crosses the 10-bit RLC SN wrap
            let pdu = tx.encapsulate(&sdu, 16).unwrap();
            assert!(rx.decapsulate(&pdu).is_ok());
        }
    }

    #[test]
    fn too_small_tb_is_rejected() {
        let mut tx = BearerTx::default();
        assert!(tx.encapsulate(&[0u8; 100], 100).is_none());
        assert!(tx.encapsulate(&[0u8; 100], 107).is_some());
    }

    #[test]
    fn corruption_detected() {
        let mut tx = BearerTx::default();
        let sdu = vec![9u8; 30];
        let pdu = tx.encapsulate(&sdu, 64).unwrap();
        // header corruption
        let mut bad = pdu.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            BearerRx::default().decapsulate(&bad),
            Err(L2Error::BadHeader)
        );
        // padding corruption
        let mut bad = pdu.clone();
        *bad.last_mut().unwrap() = 1;
        assert_eq!(
            BearerRx::default().decapsulate(&bad),
            Err(L2Error::BadLength)
        );
        // truncation
        assert_eq!(
            BearerRx::default().decapsulate(&pdu[..4]),
            Err(L2Error::Truncated)
        );
    }
}
