//! Adaptive modulation and coding (link adaptation).
//!
//! The eNB scheduler picks the modulation/rate pair from the UE's
//! channel-quality report — the mechanism that keeps the paper's
//! "300 Mbps station" (Figure 16) loaded with the highest rate the
//! channel supports. The table below is a compact CQI→MCS mapping with
//! SNR switching thresholds derived from this codebase's own waterfall
//! measurements (the `ber` experiment): each entry's threshold leaves
//! ≥1 dB margin over the SNR where that configuration decodes cleanly.

use vran_phy::modulation::Modulation;

/// One link-adaptation operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McsEntry {
    /// Modulation order.
    pub modulation: Modulation,
    /// Code rate ×1024 (as in `PipelineConfig::rate_x1024`:
    /// coded bits per information bit ×1024 ⇒ 2048 = rate 1/2).
    pub rate_x1024: u32,
    /// Minimum Es/N0 (dB) at which this point operates with margin.
    pub min_snr_db: f32,
}

impl McsEntry {
    /// Information bits per modulation symbol at this operating point.
    pub fn bits_per_symbol(&self) -> f64 {
        self.modulation.bits_per_symbol() as f64 * 1024.0 / self.rate_x1024 as f64
    }
}

/// The MCS table, lowest rate first.
pub const MCS_TABLE: [McsEntry; 6] = [
    McsEntry {
        modulation: Modulation::Qpsk,
        rate_x1024: 3072,
        min_snr_db: -1.0,
    }, // r=1/3
    McsEntry {
        modulation: Modulation::Qpsk,
        rate_x1024: 2048,
        min_snr_db: 2.5,
    }, // r=1/2
    McsEntry {
        modulation: Modulation::Qam16,
        rate_x1024: 3072,
        min_snr_db: 6.0,
    }, // r=1/3
    McsEntry {
        modulation: Modulation::Qam16,
        rate_x1024: 2048,
        min_snr_db: 9.5,
    }, // r=1/2
    McsEntry {
        modulation: Modulation::Qam64,
        rate_x1024: 2560,
        min_snr_db: 13.5,
    }, // r=2/5
    McsEntry {
        modulation: Modulation::Qam64,
        rate_x1024: 2048,
        min_snr_db: 17.0,
    }, // r=1/2
];

/// Select the highest-throughput operating point for a reported SNR;
/// `None` when even the most robust point lacks margin.
pub fn select_mcs(snr_db: f32) -> Option<McsEntry> {
    MCS_TABLE
        .iter()
        .rev()
        .find(|e| snr_db >= e.min_snr_db)
        .copied()
}

/// Outer-loop link adaptation: nudge an SNR offset by decode outcomes
/// (the classic 10 %-BLER target controller).
#[derive(Debug, Clone, Copy)]
pub struct OuterLoop {
    offset_db: f32,
    step_up: f32,
    step_down: f32,
}

impl Default for OuterLoop {
    fn default() -> Self {
        // 10 % BLER target: down-step = 9 × up-step
        Self {
            offset_db: 0.0,
            step_up: 0.1,
            step_down: 0.9,
        }
    }
}

impl OuterLoop {
    /// Effective SNR to feed [`select_mcs`].
    pub fn adjusted(&self, measured_snr_db: f32) -> f32 {
        measured_snr_db + self.offset_db
    }

    /// Report a decode outcome; the offset creeps up on success and
    /// drops sharply on failure.
    pub fn report(&mut self, ok: bool) {
        if ok {
            self.offset_db = (self.offset_db + self.step_up).min(3.0);
        } else {
            self.offset_db = (self.offset_db - self.step_down).max(-10.0);
        }
    }

    /// Current offset (diagnostic).
    pub fn offset_db(&self) -> f32 {
        self.offset_db
    }
}

/// Outer-loop wrapper that adds a coarse MCS step-down under
/// *sustained* decode failure — the AMC half of the degradation ladder.
///
/// The plain [`OuterLoop`] converges on a 10 % BLER target, but its
/// −10 dB clamp means a collapsed channel (decoder divergence every
/// TTI) can pin the offset at the floor and keep hammering an operating
/// point that will never decode. The guard watches the same outcome
/// stream: `trip_after` consecutive failures knock an extra
/// `stepdown_db` off the effective offset (pushing [`select_mcs`] one
/// or more table rows down), repeatable down to `floor_db`;
/// `recover_after` consecutive successes walk one step back toward 0.
/// Step-downs are counted for metrics ([`Self::stepdowns`]).
#[derive(Debug, Clone, Copy)]
pub struct DivergenceGuard {
    inner: OuterLoop,
    /// Extra negative offset applied on top of the outer loop.
    extra_db: f32,
    /// Consecutive failures before a step-down.
    trip_after: u32,
    /// Consecutive successes before a step back up.
    recover_after: u32,
    /// dB removed per step-down.
    stepdown_db: f32,
    /// Most negative extra offset allowed.
    floor_db: f32,
    fail_streak: u32,
    ok_streak: u32,
    stepdowns: u64,
}

impl Default for DivergenceGuard {
    fn default() -> Self {
        // One MCS table row is ~3.5 dB wide, so each 3 dB step lands
        // roughly one row down; the floor spans the whole table.
        Self {
            inner: OuterLoop::default(),
            extra_db: 0.0,
            trip_after: 12,
            recover_after: 64,
            stepdown_db: 3.0,
            floor_db: -12.0,
            fail_streak: 0,
            ok_streak: 0,
            stepdowns: 0,
        }
    }
}

impl DivergenceGuard {
    /// Effective SNR to feed [`select_mcs`] (outer loop plus guard).
    pub fn adjusted(&self, measured_snr_db: f32) -> f32 {
        measured_snr_db + self.offset_db()
    }

    /// Report a decode outcome; drives both the wrapped outer loop and
    /// the step-down streak counters.
    pub fn report(&mut self, ok: bool) {
        self.inner.report(ok);
        if ok {
            self.fail_streak = 0;
            if self.extra_db < 0.0 {
                self.ok_streak += 1;
                if self.ok_streak >= self.recover_after {
                    self.ok_streak = 0;
                    self.extra_db = (self.extra_db + self.stepdown_db).min(0.0);
                }
            }
        } else {
            self.ok_streak = 0;
            self.fail_streak += 1;
            if self.fail_streak >= self.trip_after {
                self.fail_streak = 0;
                if self.extra_db > self.floor_db {
                    self.extra_db = (self.extra_db - self.stepdown_db).max(self.floor_db);
                    self.stepdowns += 1;
                }
            }
        }
    }

    /// Combined offset: outer-loop offset plus the guard's step-downs.
    pub fn offset_db(&self) -> f32 {
        self.inner.offset_db() + self.extra_db
    }

    /// MCS step-downs taken since construction.
    pub fn stepdowns(&self) -> u64 {
        self.stepdowns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, Transport};
    use crate::pipeline::{PipelineConfig, UplinkPipeline};

    #[test]
    fn table_is_monotone_in_both_axes() {
        for w in MCS_TABLE.windows(2) {
            assert!(w[1].min_snr_db > w[0].min_snr_db, "thresholds must rise");
            assert!(
                w[1].bits_per_symbol() > w[0].bits_per_symbol(),
                "throughput must rise with SNR"
            );
        }
    }

    #[test]
    fn selection_picks_the_highest_feasible() {
        assert_eq!(select_mcs(-5.0), None);
        assert_eq!(select_mcs(0.0).unwrap().rate_x1024, 3072);
        assert_eq!(select_mcs(0.0).unwrap().modulation, Modulation::Qpsk);
        let top = select_mcs(30.0).unwrap();
        assert_eq!(top.modulation, Modulation::Qam64);
        assert_eq!(top.rate_x1024, 2048);
        // boundary behavior
        assert_eq!(select_mcs(9.5).unwrap().modulation, Modulation::Qam16);
        assert_eq!(select_mcs(9.49).unwrap().rate_x1024, 3072);
    }

    #[test]
    fn every_operating_point_decodes_at_its_threshold() {
        // The table's promise, verified end-to-end: each entry decodes
        // a real packet at exactly its threshold SNR.
        let mut b = PacketBuilder::new(1, 2);
        for e in MCS_TABLE {
            let cfg = PipelineConfig {
                modulation: e.modulation,
                rate_x1024: e.rate_x1024,
                snr_db: e.min_snr_db,
                decoder_iterations: 8,
                ..Default::default()
            };
            let p = b.build(Transport::Udp, 256).unwrap();
            let r = UplinkPipeline::new(cfg).process(&p);
            assert!(
                r.is_ok(),
                "{} r={}/1024 must decode at {} dB: {r:?}",
                e.modulation.name(),
                e.rate_x1024,
                e.min_snr_db
            );
        }
    }

    #[test]
    fn outer_loop_backs_off_on_failures() {
        let mut ol = OuterLoop::default();
        for _ in 0..20 {
            ol.report(true);
        }
        let up = ol.offset_db();
        assert!(up > 1.0);
        ol.report(false);
        assert!(ol.offset_db() < up - 0.5, "one failure must bite hard");
        for _ in 0..100 {
            ol.report(false);
        }
        assert!(ol.offset_db() >= -10.0, "offset must be bounded");
    }

    #[test]
    fn divergence_guard_steps_down_under_sustained_failure() {
        let mut g = DivergenceGuard::default();
        // Below the trip threshold nothing extra happens.
        for _ in 0..11 {
            g.report(false);
        }
        assert_eq!(g.stepdowns(), 0);
        g.report(true); // break the streak
        for _ in 0..12 {
            g.report(false);
        }
        assert_eq!(g.stepdowns(), 1, "12 consecutive failures step down");
        let stepped = g.offset_db();
        // The guard pushes past the outer loop's own clamp.
        let mut plain = OuterLoop::default();
        for _ in 0..11 {
            plain.report(false);
        }
        plain.report(true);
        for _ in 0..12 {
            plain.report(false);
        }
        assert!(stepped < plain.offset_db() - 2.5, "guard adds ≥ one step");
        // Step-downs are bounded by the floor.
        for _ in 0..500 {
            g.report(false);
        }
        assert!(g.offset_db() >= -10.0 - 12.0 - 1e-6);
        assert_eq!(g.stepdowns(), 4, "floor caps the ladder at 12 dB");
        // Sustained success walks back up.
        let floor = g.offset_db();
        for _ in 0..64 {
            g.report(true);
        }
        assert!(g.offset_db() > floor + 2.5, "recovery restores a step");
    }
}
