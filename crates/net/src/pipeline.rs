//! The end-to-end uplink/downlink PHY pipeline.
//!
//! One packet's uplink journey (the paper's Figure 1 path, transmitter
//! and receiver both simulated so the loop closes):
//!
//! ```text
//! frame bytes → CRC24A → segmentation → turbo encode → rate match
//!   → scramble → modulate → OFDM → AWGN → OFDM demod → soft demap
//!   → descramble → de-rate-match → DATA ARRANGEMENT → turbo decode
//!   → desegment → CRC check → frame bytes
//! ```
//!
//! The receive side runs one of two [`DecoderBackend`]s: `Native`
//! (default) uses real-intrinsics arrangement and turbo-decode kernels
//! with runtime ISA dispatch and per-pipeline scratch reuse — the
//! wall-clock fast path; `Scalar` runs the arrangement through the
//! `vran-arrange` VM kernels and the scalar reference decoder — the
//! functional-model path. Both are bit-exact by construction, so the
//! backend never changes WHAT is computed, only how fast.

use crate::metrics::{PipelineMetrics, Stage};
use crate::packet::Packet;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;
use vran_arrange::{ArrangeKernel, Mechanism};
use vran_phy::bits::{pack_msb, unpack_msb};
use vran_phy::channel::AwgnChannel;
use vran_phy::crc::{CRC24A, CRC24B};
use vran_phy::llr::{InterleavedLlrs, Llr, SoftStreams, TailLlrs, TurboLlrs};
use vran_phy::modulation::Modulation;
use vran_phy::ofdm::OfdmConfig;
use vran_phy::rate_match::RateMatcher;
use vran_phy::scrambler::{descramble_llrs, scramble_bits, GoldSequence};
use vran_phy::segmentation::Segmentation;
use vran_phy::turbo::{DecodeScratch, NativeTurboDecoder, TurboDecoder, TurboEncoder};
use vran_simd::RegWidth;

/// Which decoder implementation the receive path runs.
///
/// Both backends compute bit-identical results (the native kernels use
/// the same saturating i16 operations in the same order as the scalar
/// reference, enforced by `vran-phy`'s property tests); they differ
/// only in wall-clock cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DecoderBackend {
    /// Scalar max-log-MAP reference plus the VM arrangement kernel
    /// selected by `width`/`mechanism` — the functional-model path.
    Scalar,
    /// Real-intrinsics fast path: native APCM arrangement and the
    /// runtime-dispatched [`NativeTurboDecoder`], with per-pipeline
    /// scratch reuse (allocation-free per code block after warm-up).
    #[default]
    Native,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// SIMD register width for the arrangement / decoder kernels.
    pub width: RegWidth,
    /// Arrangement mechanism under test.
    pub mechanism: Mechanism,
    /// Receive-side decoder implementation.
    pub backend: DecoderBackend,
    /// Data-channel modulation.
    pub modulation: Modulation,
    /// Channel Es/N0 in dB.
    pub snr_db: f32,
    /// Turbo decoder iteration cap.
    pub decoder_iterations: usize,
    /// Coded bits per information bit ×1024 (1024 = rate 1; the spec's
    /// circular buffer handles any value). Default 2048 → rate 1/2.
    pub rate_x1024: u32,
    /// Use the frequency-selective fading channel with pilot-based
    /// estimation and ZF equalization instead of time-domain OFDM over
    /// flat AWGN.
    pub fading: bool,
    /// Channel noise seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            width: RegWidth::Sse128,
            mechanism: Mechanism::Baseline,
            backend: DecoderBackend::Native,
            modulation: Modulation::Qam16,
            snr_db: 14.0,
            decoder_iterations: 6,
            rate_x1024: 2048,
            fading: false,
            seed: 1,
        }
    }
}

/// Wall-clock nanoseconds per pipeline stage for one packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageNanos {
    /// Encoder side: CRC + segmentation + turbo encoding + rate match.
    pub encode: u64,
    /// Scrambling + modulation + OFDM, both directions.
    pub transport: u64,
    /// Soft demapping + descrambling + de-rate-matching.
    pub demap: u64,
    /// The data arrangement process (the paper's subject).
    pub arrangement: u64,
    /// Turbo decoding (the "calculation" process).
    pub decode: u64,
}

impl StageNanos {
    /// Total across stages.
    pub fn total(&self) -> u64 {
        self.encode + self.transport + self.demap + self.arrangement + self.decode
    }
}

/// Result of pushing one packet through the loop.
#[derive(Debug, Clone)]
pub struct PacketResult {
    /// Whether the reassembled frame matched the transmitted one.
    pub ok: bool,
    /// Transport-block size in bits (incl. CRC24A).
    pub tb_bits: usize,
    /// Code blocks the TB split into.
    pub code_blocks: usize,
    /// Total coded (rate-matched) bits on the air.
    pub coded_bits: usize,
    /// Decoder iterations used, summed over code blocks.
    pub decoder_iterations: usize,
    /// Per-stage wall-clock time.
    pub nanos: StageNanos,
}

/// Receive-side working state reused across packets so the per-code-
/// block hot loop performs no heap allocation after warm-up: cached
/// per-K decoders and rate matchers (QPP/wmap table construction is
/// itself allocation-heavy) plus staging buffers that retain capacity.
///
/// Lives behind a `RefCell` because `process` takes `&self`; pipelines
/// are per-worker (the threaded runner builds one per thread), so the
/// single-threaded interior mutability is sufficient.
#[derive(Debug, Clone, Default)]
struct HotState {
    /// Native decoders, keyed by block size K.
    natives: Vec<NativeTurboDecoder>,
    /// Scalar decoders, keyed by block size K.
    scalars: Vec<(usize, TurboDecoder)>,
    /// Rate matchers, keyed by per-stream length `d = K + 4`.
    rms: Vec<(usize, RateMatcher)>,
    /// De-rate-matcher output staging (`d⁽⁰⁾ d⁽¹⁾ d⁽²⁾`, length K+4).
    dllr: [Vec<Llr>; 3],
    /// Interleaved-triple staging for the arrangement step (3K LLRs).
    inter: Vec<Llr>,
    /// Arranged streams the native decoder reads.
    arranged: SoftStreams,
    /// Native-decoder working buffers.
    scratch: DecodeScratch,
    /// Decoded-bit buffers, one per code-block index, reused across
    /// packets and handed to desegmentation as a slice.
    bits_pool: Vec<Vec<u8>>,
}

impl HotState {
    /// Index of the cached native decoder for block size `k`.
    fn native_index(&mut self, k: usize, iterations: usize) -> usize {
        match self.natives.iter().position(|d| d.k() == k) {
            Some(i) => i,
            None => {
                self.natives.push(NativeTurboDecoder::new(k, iterations));
                self.natives.len() - 1
            }
        }
    }

    /// Index of the cached scalar decoder for block size `k`.
    fn scalar_index(&mut self, k: usize, iterations: usize) -> usize {
        match self.scalars.iter().position(|(dk, _)| *dk == k) {
            Some(i) => i,
            None => {
                self.scalars.push((k, TurboDecoder::new(k, iterations)));
                self.scalars.len() - 1
            }
        }
    }

    /// Index of the cached rate matcher for stream length `d`.
    fn rm_index(&mut self, d: usize) -> usize {
        match self.rms.iter().position(|(rd, _)| *rd == d) {
            Some(i) => i,
            None => {
                self.rms.push((d, RateMatcher::new(d)));
                self.rms.len() - 1
            }
        }
    }
}

/// The uplink pipeline (shared by the downlink driver — the PHY chain
/// is symmetric for our purposes; only the traffic direction and DCI
/// handling differ in `runner`).
#[derive(Debug, Clone)]
pub struct UplinkPipeline {
    cfg: PipelineConfig,
    ofdm: OfdmConfig,
    c_init: u32,
    metrics: Option<Arc<PipelineMetrics>>,
    hot: RefCell<HotState>,
}

/// Run `f`, recording its latency under `stage` when a live metrics
/// registry is attached. The `None` arm compiles to a plain call — no
/// clock reads when metrics are off.
#[inline]
fn timed<T>(m: Option<&PipelineMetrics>, stage: Stage, f: impl FnOnce() -> T) -> T {
    match m {
        Some(m) => {
            let t = Instant::now();
            let r = f();
            m.record_stage(stage, t.elapsed().as_nanos() as u64);
            r
        }
        None => f(),
    }
}

impl UplinkPipeline {
    /// Build a pipeline.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            ofdm: OfdmConfig::lte5mhz(),
            c_init: GoldSequence::c_init_pxsch(0x1234, 0, 4, 42),
            metrics: None,
            hot: RefCell::new(HotState::default()),
        }
    }

    /// Build a pipeline that records per-stage latency histograms and
    /// packet counters into `metrics`.
    pub fn with_metrics(cfg: PipelineConfig, metrics: Arc<PipelineMetrics>) -> Self {
        let mut p = Self::new(cfg);
        p.metrics = Some(metrics);
        p
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<PipelineMetrics>> {
        self.metrics.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Process one framed packet through the complete loop.
    pub fn process(&self, packet: &Packet) -> PacketResult {
        let cfg = &self.cfg;
        let m = self.metrics.as_deref().filter(|m| m.is_enabled());
        let mut nanos = StageNanos::default();

        // ---- transmitter: L2 encapsulation, TB build, encode ----
        let t0 = Instant::now();
        // PDCP/RLC/MAC framing (per-packet bearer state; stream
        // continuity is exercised by the l2 module's own tests)
        let pdu = crate::l2::BearerTx::default()
            .encapsulate(&packet.frame, packet.frame.len() + crate::l2::L2_OVERHEAD)
            .expect("TB sized to fit");
        let frame_bits = unpack_msb(&pdu, pdu.len() * 8);
        let tb = timed(m, Stage::Crc, || CRC24A.attach(&frame_bits));
        let (seg, blocks) = timed(m, Stage::Segment, || {
            let seg = Segmentation::plan(tb.len());
            let blocks = seg.segment(&tb);
            (seg, blocks)
        });
        let mut coded = Vec::new();
        let mut block_e = Vec::with_capacity(blocks.len());
        for blk in &blocks {
            let k = blk.len();
            let enc = TurboEncoder::new(k);
            let cw = timed(m, Stage::Encode, || enc.encode(blk));
            let rm = RateMatcher::new(k + 4);
            let e = ((k as u64 * cfg.rate_x1024 as u64 / 1024) as usize)
                .next_multiple_of(cfg.modulation.bits_per_symbol() * 2)
                .min(3 * (k + 4) * 2); // cap repetition at 2×
            let d = cw.to_dstreams();
            timed(m, Stage::RateMatch, || {
                coded.extend(rm.rate_match(&d, e, 0))
            });
            block_e.push(e);
        }
        nanos.encode = t0.elapsed().as_nanos() as u64;

        // ---- scramble, modulate, OFDM, channel ----
        let t0 = Instant::now();
        let mut tx_bits = coded;
        // pad to a whole number of symbols
        let bps = cfg.modulation.bits_per_symbol();
        let padded_len = tx_bits.len().next_multiple_of(bps);
        tx_bits.resize(padded_len, 0);
        let symbols = timed(m, Stage::Modulate, || {
            scramble_bits(&mut tx_bits, self.c_init);
            cfg.modulation.modulate(&tx_bits)
        });
        let (rx_symbols, scale) = timed(m, Stage::Ofdm, || {
            if cfg.fading {
                self.fading_pass(&symbols)
            } else {
                let air = self.ofdm.modulate_stream(&symbols);
                let mut channel = AwgnChannel::new(cfg.snr_db, cfg.seed);
                let rx_air = channel.apply(&air);
                let rx = self.ofdm.demodulate_stream(&rx_air, symbols.len());
                (rx, (channel.llr_scale() / 8.0).clamp(0.25, 16.0))
            }
        });
        nanos.transport = t0.elapsed().as_nanos() as u64;

        // ---- demap, descramble, de-rate-match ----
        let t0 = Instant::now();
        let llrs = timed(m, Stage::Modulate, || {
            let mut llrs = cfg.modulation.demodulate(&rx_symbols, scale);
            llrs.truncate(padded_len);
            descramble_llrs(&mut llrs, self.c_init);
            llrs
        });
        nanos.demap = t0.elapsed().as_nanos() as u64;

        // ---- per code block: de-rate-match, ARRANGE, decode ----
        let hot = &mut *self.hot.borrow_mut();
        let scratch_allocs0 = hot.scratch.allocations();
        let scratch_reuses0 = hot.scratch.reuses();
        if hot.bits_pool.len() < blocks.len() {
            hot.bits_pool.resize_with(blocks.len(), Vec::new);
        }
        let mut iterations = 0;
        let mut pos = 0;
        let mut all_ok = true;
        for (i, blk) in blocks.iter().enumerate() {
            let k = blk.len();
            let e = block_e[i];
            let rmi = hot.rm_index(k + 4);
            let t0 = Instant::now();
            timed(m, Stage::RateMatch, || {
                hot.rms[rmi]
                    .1
                    .de_rate_match_into(&llrs[pos..pos + e], 0, &mut hot.dllr)
            });
            pos += e;
            let tails = TailLlrs::from_dstreams(&hot.dllr, k);
            nanos.demap += t0.elapsed().as_nanos() as u64;

            match cfg.backend {
                DecoderBackend::Native => {
                    // The data arrangement process under test, native
                    // flavor: multiplex the streams into the triples
                    // the de-rate-matcher hands the decoder (Fig 8a),
                    // then segregate them with the best real-intrinsics
                    // APCM kernel the host supports.
                    let t0 = Instant::now();
                    timed(m, Stage::Arrange, || {
                        hot.inter.resize(3 * k, 0);
                        for j in 0..k {
                            hot.inter[3 * j] = hot.dllr[0][j];
                            hot.inter[3 * j + 1] = hot.dllr[1][j];
                            hot.inter[3 * j + 2] = hot.dllr[2][j];
                        }
                        hot.arranged.sys.resize(k, 0);
                        hot.arranged.p1.resize(k, 0);
                        hot.arranged.p2.resize(k, 0);
                        vran_arrange::native::deinterleave_into(
                            vran_arrange::native::best_apcm(),
                            &hot.inter,
                            k,
                            &mut hot.arranged,
                        );
                    });
                    nanos.arrangement += t0.elapsed().as_nanos() as u64;

                    let t0 = Instant::now();
                    let di = hot.native_index(k, cfg.decoder_iterations);
                    let crc = (blocks.len() > 1).then_some(&CRC24B);
                    let (iters, crc_ok) = timed(m, Stage::Decode, || {
                        hot.natives[di].decode_streams_into(
                            &hot.arranged.sys,
                            &hot.arranged.p1,
                            &hot.arranged.p2,
                            &tails,
                            crc,
                            &mut hot.scratch,
                            &mut hot.bits_pool[i],
                        )
                    });
                    iterations += iters;
                    nanos.decode += t0.elapsed().as_nanos() as u64;
                    if crc_ok == Some(false) {
                        all_ok = false;
                    }
                }
                DecoderBackend::Scalar => {
                    let turbo_in = TurboLlrs::from_dstreams(&hot.dllr, k);

                    // The data arrangement process under test, VM
                    // flavor: the configured mechanism/width kernel
                    // segregates the interleaved triples.
                    let t0 = Instant::now();
                    let arranged = timed(m, Stage::Arrange, || {
                        let interleaved = turbo_in.to_interleaved();
                        let kern = ArrangeKernel::new(cfg.width, cfg.mechanism);
                        let (arranged, _) = kern.arrange(&interleaved, false);
                        kern.depermute(&arranged)
                    });
                    nanos.arrangement += t0.elapsed().as_nanos() as u64;

                    let t0 = Instant::now();
                    let dec_in = TurboLlrs {
                        k,
                        streams: arranged,
                        tails: turbo_in.tails,
                    };
                    let si = hot.scalar_index(k, cfg.decoder_iterations);
                    let out = timed(m, Stage::Decode, || {
                        if blocks.len() > 1 {
                            hot.scalars[si].1.decode_with_crc(&dec_in, &CRC24B)
                        } else {
                            hot.scalars[si].1.decode(&dec_in)
                        }
                    });
                    iterations += out.iterations_run;
                    nanos.decode += t0.elapsed().as_nanos() as u64;
                    if out.crc_ok == Some(false) {
                        all_ok = false;
                    }
                    hot.bits_pool[i] = out.bits;
                }
            }
        }

        // ---- reassemble, de-encapsulate & verify ----
        let rx_tb = timed(m, Stage::Segment, || {
            seg.desegment(&hot.bits_pool[..blocks.len()])
        });
        let ok = all_ok
            && match rx_tb {
                Some(tb_bits) => match timed(m, Stage::Crc, || CRC24A.check(&tb_bits)) {
                    Some(payload) => crate::l2::BearerRx::default()
                        .decapsulate(&pack_msb(payload))
                        .map(|sdu| sdu == packet.frame.to_vec())
                        .unwrap_or(false),
                    None => false,
                },
                None => false,
            };

        if let Some(m) = m {
            m.record_packet(ok, blocks.len(), iterations);
            m.record_scratch(
                hot.scratch.allocations() - scratch_allocs0,
                hot.scratch.reuses() - scratch_reuses0,
            );
        }

        PacketResult {
            ok,
            tb_bits: tb.len(),
            code_blocks: blocks.len(),
            coded_bits: pos,
            decoder_iterations: iterations,
            nanos,
        }
    }

    /// Fading path: resource grids with scattered pilots, per-grid
    /// channel estimation and ZF equalization (frequency-domain model,
    /// matching the downlink pipeline).
    fn fading_pass(
        &self,
        symbols: &[vran_phy::modulation::Cplx],
    ) -> (Vec<vran_phy::modulation::Cplx>, f32) {
        use vran_phy::equalizer::{Equalizer, FadingChannel};
        const GRID: usize = 300;
        let eq = Equalizer::lte();
        let per_grid = GRID - eq.pilot_positions(GRID).len();
        let mut chan = FadingChannel::new(GRID, self.cfg.snr_db, 3, self.cfg.seed);
        let mut out = Vec::with_capacity(symbols.len());
        for chunk in symbols.chunks(per_grid) {
            let mut d = chunk.to_vec();
            d.resize(per_grid, vran_phy::modulation::Cplx::default());
            let (grid, _) = eq.insert_pilots(&d, GRID);
            let rx = chan.apply(&grid);
            let h = eq.estimate(&rx);
            let (eq_syms, _w) = eq.equalize(&rx, &h);
            out.extend_from_slice(&eq_syms[..chunk.len().min(eq_syms.len())]);
        }
        out.truncate(symbols.len());
        (out, 1.0)
    }

    /// Interleaved LLR volume (triples) the arrangement must process
    /// for a packet of `wire_len` bytes — the work-size input to the
    /// `vran-uarch` latency model.
    pub fn arrangement_triples(wire_len: usize) -> usize {
        let b = (wire_len + crate::l2::L2_OVERHEAD) * 8 + CRC24A.width();
        let seg = Segmentation::plan(b);
        (0..seg.c).map(|i| seg.k_of(i)).sum()
    }
}

/// LLR type re-export for downstream convenience.
pub type SoftValue = Llr;

/// Convenience: an interleaved workload of `k` triples with
/// reproducible contents (for benches and experiments that don't need
/// a real channel).
pub fn synthetic_interleaved(k: usize, seed: u64) -> InterleavedLlrs {
    let mut s = seed | 1;
    let data: Vec<Llr> = (0..3 * k)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            ((s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 48) as i16) >> 4
        })
        .collect();
    InterleavedLlrs { k, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, Transport};
    use vran_arrange::ApcmVariant;

    fn run(cfg: PipelineConfig, size: usize) -> PacketResult {
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, size).unwrap();
        UplinkPipeline::new(cfg).process(&p)
    }

    #[test]
    fn clean_channel_round_trips_small_packet() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let r = run(cfg, 64);
        assert!(r.ok, "{r:?}");
        assert_eq!(r.code_blocks, 1);
        assert_eq!(r.tb_bits, (64 + crate::l2::L2_OVERHEAD) * 8 + 24);
    }

    #[test]
    fn full_mtu_packet_round_trips() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let r = run(cfg, 1500);
        assert!(r.ok, "{r:?}");
        assert!(r.code_blocks >= 2, "1500 B TB must segment: {r:?}");
    }

    #[test]
    fn moderate_snr_still_decodes() {
        // QPSK at 8 dB with rate 1/2 turbo: comfortably decodable.
        let cfg = PipelineConfig {
            modulation: Modulation::Qpsk,
            snr_db: 8.0,
            ..Default::default()
        };
        let r = run(cfg, 256);
        assert!(r.ok, "{r:?}");
    }

    #[test]
    fn hopeless_snr_fails_cleanly() {
        let cfg = PipelineConfig {
            modulation: Modulation::Qam64,
            snr_db: -10.0,
            decoder_iterations: 2,
            ..Default::default()
        };
        let r = run(cfg, 256);
        assert!(!r.ok, "−10 dB 64-QAM must not decode");
    }

    #[test]
    fn all_mechanisms_and_widths_produce_identical_outcomes() {
        // The paper's functional-equivalence requirement: the
        // arrangement mechanism must not change WHAT is computed.
        let mut results = Vec::new();
        for width in RegWidth::ALL {
            for mech in [
                Mechanism::Baseline,
                Mechanism::Apcm(ApcmVariant::Shuffle),
                Mechanism::Apcm(ApcmVariant::MaskRotate),
            ] {
                let cfg = PipelineConfig {
                    width,
                    mechanism: mech,
                    backend: DecoderBackend::Scalar,
                    snr_db: 12.0,
                    ..Default::default()
                };
                let r = run(cfg, 512);
                results.push((width, mech.name(), r.ok, r.decoder_iterations));
            }
        }
        let first = (results[0].2, results[0].3);
        for (w, m, ok, iters) in &results {
            assert_eq!((*ok, *iters), first, "{w} {m} diverged: {results:?}");
        }
        assert!(first.0, "the common outcome should be success at 12 dB");
        // ... and neither must the native fast path.
        let native = run(
            PipelineConfig {
                snr_db: 12.0,
                ..Default::default()
            },
            512,
        );
        assert_eq!((native.ok, native.decoder_iterations), first);
    }

    #[test]
    fn native_and_scalar_backends_agree() {
        // The fast path's bit-exactness contract, observed end to end:
        // identical outcomes, iteration counts and coded-bit volumes
        // across packet sizes (1 and ≥2 code blocks) and channel
        // qualities, including a failing one.
        for (size, snr) in [(64usize, 30.0f32), (256, 8.0), (1500, 30.0), (256, 2.0)] {
            let results: Vec<PacketResult> = [DecoderBackend::Scalar, DecoderBackend::Native]
                .into_iter()
                .map(|backend| {
                    run(
                        PipelineConfig {
                            backend,
                            snr_db: snr,
                            ..Default::default()
                        },
                        size,
                    )
                })
                .collect();
            let (s, n) = (&results[0], &results[1]);
            assert_eq!(s.ok, n.ok, "{size} B at {snr} dB");
            assert_eq!(s.tb_bits, n.tb_bits);
            assert_eq!(s.code_blocks, n.code_blocks);
            assert_eq!(s.coded_bits, n.coded_bits);
            assert_eq!(
                s.decoder_iterations, n.decoder_iterations,
                "{size} B at {snr} dB: early-stop behavior diverged"
            );
        }
    }

    #[test]
    fn hot_loop_allocations_stop_after_warmup() {
        // The zero-allocation claim for the native per-code-block
        // loop: the first packet may grow the scratch buffers; a
        // second identical packet must be served entirely from
        // retained capacity.
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 1500).unwrap();
        assert!(pipe.process(&p).ok);
        let allocs_warm = metrics.decode_scratch_allocs.get();
        assert!(allocs_warm > 0, "first packet must warm the scratch up");
        assert!(pipe.process(&p).ok);
        assert_eq!(
            metrics.decode_scratch_allocs.get(),
            allocs_warm,
            "warm packet allocated in the hot decode loop"
        );
        assert!(
            metrics.decode_scratch_reuses.get() > 0,
            "warm packet must reuse retained scratch capacity"
        );
    }

    #[test]
    fn arrangement_volume_model_matches_pipeline() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1, 2);
        let p = b.build(Transport::Udp, 300).unwrap();
        let r = UplinkPipeline::new(cfg).process(&p);
        assert!(r.ok);
        let expect = UplinkPipeline::arrangement_triples(300);
        // tb_bits + per-block CRCs + filler = sum of K
        let seg = Segmentation::plan(r.tb_bits);
        let sum_k: usize = (0..seg.c).map(|i| seg.k_of(i)).sum();
        assert_eq!(expect, sum_k);
    }

    #[test]
    fn stage_times_are_populated() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let r = run(cfg, 256);
        assert!(r.nanos.encode > 0);
        assert!(r.nanos.transport > 0);
        assert!(r.nanos.arrangement > 0);
        assert!(r.nanos.decode > 0);
        assert_eq!(
            r.nanos.total(),
            r.nanos.encode
                + r.nanos.transport
                + r.nanos.demap
                + r.nanos.arrangement
                + r.nanos.decode
        );
    }

    #[test]
    fn fading_uplink_closes_the_loop() {
        let cfg = PipelineConfig {
            fading: true,
            modulation: Modulation::Qpsk,
            snr_db: 22.0,
            decoder_iterations: 8,
            ..Default::default()
        };
        let r = run(cfg, 256);
        assert!(r.ok, "equalized fading uplink must decode: {r:?}");
    }

    #[test]
    fn fading_threshold_is_no_better_than_awgn() {
        // Find the lowest SNR (1 dB grid) at which each channel first
        // decodes; frequency-selective fading can only need more.
        let threshold = |fading: bool| -> i32 {
            for snr in 4..=20 {
                let cfg = PipelineConfig {
                    fading,
                    modulation: Modulation::Qam16,
                    snr_db: snr as f32,
                    decoder_iterations: 6,
                    ..Default::default()
                };
                if run(cfg, 256).ok {
                    return snr;
                }
            }
            99
        };
        let awgn = threshold(false);
        let fade = threshold(true);
        assert!(awgn < 99, "AWGN must decode somewhere below 20 dB");
        assert!(
            fade >= awgn,
            "fading threshold ({fade} dB) below AWGN ({awgn} dB)?"
        );
    }

    #[test]
    fn metrics_record_every_stage_for_one_packet() {
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 256).unwrap();
        let r = UplinkPipeline::with_metrics(cfg, metrics.clone()).process(&p);
        assert!(r.ok);
        for s in Stage::ALL {
            assert!(
                metrics.stage(s).count() > 0,
                "stage {} recorded nothing",
                s.name()
            );
        }
        assert_eq!(metrics.packets.get(), 1);
        assert_eq!(metrics.ok_packets.get(), 1);
        assert_eq!(metrics.code_blocks.get(), r.code_blocks as u64);
        assert_eq!(
            metrics.decoder_iterations.get(),
            r.decoder_iterations as u64
        );
    }

    #[test]
    fn disabled_metrics_leave_pipeline_behavior_unchanged() {
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(false));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 128).unwrap();
        let r = UplinkPipeline::with_metrics(cfg, metrics.clone()).process(&p);
        assert!(r.ok);
        assert_eq!(metrics.packets.get(), 0);
        assert_eq!(metrics.stage(Stage::Decode).count(), 0);
    }

    #[test]
    fn synthetic_interleaved_is_deterministic() {
        let a = synthetic_interleaved(96, 5);
        let b = synthetic_interleaved(96, 5);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_interleaved(96, 6));
        assert_eq!(a.data.len(), 288);
    }
}
