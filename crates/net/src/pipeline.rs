//! The end-to-end uplink/downlink PHY pipeline.
//!
//! One packet's uplink journey (the paper's Figure 1 path, transmitter
//! and receiver both simulated so the loop closes):
//!
//! ```text
//! frame bytes → CRC24A → segmentation → turbo encode → rate match
//!   → scramble → modulate → OFDM → AWGN → OFDM demod → soft demap
//!   → descramble → de-rate-match → DATA ARRANGEMENT → turbo decode
//!   → desegment → CRC check → frame bytes
//! ```
//!
//! The receive side runs one of two [`DecoderBackend`]s: `Native`
//! (default) uses real-intrinsics arrangement and turbo-decode kernels
//! with runtime ISA dispatch and per-pipeline scratch reuse — the
//! wall-clock fast path; `Scalar` runs the arrangement through the
//! `vran-arrange` VM kernels and the scalar reference decoder — the
//! functional-model path. Both are bit-exact by construction, so the
//! backend never changes WHAT is computed, only how fast.
//!
//! # Fault tolerance
//!
//! [`UplinkPipeline::process`] returns `Result<PacketResult,
//! PipelineError>`: every receive-path failure classifies into one
//! [`crate::error::ErrorCategory`] instead of panicking or silently
//! reporting `ok = false`. Three robustness mechanisms hang off the
//! same path:
//!
//! * **Ingress validation** — frames are re-parsed
//!   ([`crate::packet::ParsedPacket::parse`]) before any PHY work, so
//!   truncated or corrupted headers are rejected as
//!   [`PipelineError::MalformedFrame`] rather than fed downstream.
//! * **Deadline-aware degradation** — an optional per-packet time
//!   budget ([`PipelineConfig::deadline_ns`]) first halves the decoder
//!   iteration cap when the packet has spent half its budget, then
//!   aborts with [`PipelineError::DeadlineExceeded`] once the budget is
//!   gone.
//! * **Backend degradation ladder** — after [`DEGRADE_AFTER`]
//!   consecutive decode failures a `Native` pipeline falls back to the
//!   `Scalar` reference backend (bit-exact, so behavior-neutral —
//!   this models falling off a suspect fast path), and restores after
//!   [`RESTORE_AFTER`] consecutive successes. Both transitions are
//!   observable in [`crate::metrics::PipelineMetrics`].

use crate::error::{DecodeFailure, ErrorCategory, FrameFault, PipelineError, SegFault};
use crate::faultinject::{FaultInjector, FaultKind};
use crate::metrics::{PipelineMetrics, Stage};
use crate::observe::{
    BreakerConfig, BreakerStage, BreakerState, CircuitBreaker, FlightRecorder, TraceEvent,
};
use crate::packet::{Packet, ParsedPacket};
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;
use vran_arrange::{best_fused, fused_ingest_into, ArrangeKernel, Mechanism};
use vran_phy::bits::{extend_bits_from_words, pack_msb, unpack_msb};
use vran_phy::channel::AwgnChannel;
use vran_phy::crc::{best_crc, CrcImpl, CRC24A, CRC24B};
use vran_phy::demap::{best_demap, demap_into, DemapImpl};
use vran_phy::llr::{InterleavedLlrs, Llr, SoftStreams, TailLlrs, TurboLlrs};
use vran_phy::modulation::Modulation;
use vran_phy::ofdm::OfdmConfig;
use vran_phy::rate_match::{PackedRateMatcher, RateMatcher};
use vran_phy::scrambler::{
    best_descramble, descramble_llrs, descramble_llrs_with, scramble_bits, DescrambleImpl,
    GoldSequence,
};
use vran_phy::segmentation::Segmentation;
use vran_phy::turbo::native_batch::{BATCH, QUAD};
use vran_phy::turbo::{
    BatchScratch, BlockLlrs, DecodeScratch, DecoderIsa, EncodeScratch, EncoderIsa,
    NativeBatchTurboDecoder, NativeTurboDecoder, PackedTurboEncoder, TurboDecoder, TurboEncoder,
};
use vran_simd::RegWidth;

/// Maximum code blocks per transport block the receive path accepts;
/// plans beyond this classify as
/// [`PipelineError::SegmentationOverflow`]. LTE category-4 uplink TBs
/// stay well under this at our 5 MHz configuration.
pub const MAX_CODE_BLOCKS: usize = 8;

/// Consecutive decode failures (CRC mismatch / divergence) before a
/// `Native` pipeline degrades to the `Scalar` reference backend.
pub const DEGRADE_AFTER: u32 = 8;

/// Consecutive successes while degraded before the `Native` backend is
/// restored.
pub const RESTORE_AFTER: u32 = 32;

/// Which decoder implementation the receive path runs.
///
/// Both backends compute bit-identical results (the native kernels use
/// the same saturating i16 operations in the same order as the scalar
/// reference, enforced by `vran-phy`'s property tests); they differ
/// only in wall-clock cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DecoderBackend {
    /// Scalar max-log-MAP reference plus the VM arrangement kernel
    /// selected by `width`/`mechanism` — the functional-model path.
    Scalar,
    /// Real-intrinsics fast path: native APCM arrangement and the
    /// runtime-dispatched [`NativeTurboDecoder`], with per-pipeline
    /// scratch reuse (allocation-free per code block after warm-up).
    #[default]
    Native,
}

/// Which transmit-side turbo encoder + rate matcher the pipelines run.
///
/// Both backends are bit-exact by construction — the packed path
/// exploits the encoder's GF(2) linearity, which cannot change WHAT is
/// encoded, only how many bits advance per instruction (enforced by
/// `vran-phy`'s property tests across all 188 QPP sizes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EncoderBackend {
    /// Per-bit trellis walk and per-position rate-match readout — the
    /// reference path.
    Scalar,
    /// Bitsliced fast path: [`PackedTurboEncoder`] (64 trellis steps
    /// per `u64`, 128/256 per register under SSE2/AVX2) plus the
    /// word-at-a-time [`PackedRateMatcher`], with per-pipeline
    /// [`EncodeScratch`] reuse (allocation-free per code block after
    /// warm-up).
    #[default]
    Packed,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// SIMD register width for the arrangement / decoder kernels.
    pub width: RegWidth,
    /// Arrangement mechanism under test.
    pub mechanism: Mechanism,
    /// Receive-side decoder implementation.
    pub backend: DecoderBackend,
    /// Transmit-side encoder implementation.
    pub encoder_backend: EncoderBackend,
    /// Data-channel modulation.
    pub modulation: Modulation,
    /// Channel Es/N0 in dB.
    pub snr_db: f32,
    /// Turbo decoder iteration cap.
    pub decoder_iterations: usize,
    /// Coded bits per information bit ×1024 (1024 = rate 1; the spec's
    /// circular buffer handles any value). Default 2048 → rate 1/2.
    pub rate_x1024: u32,
    /// Use the frequency-selective fading channel with pilot-based
    /// estimation and ZF equalization instead of time-domain OFDM over
    /// flat AWGN.
    pub fading: bool,
    /// Channel noise seed.
    pub seed: u64,
    /// Per-packet processing budget in nanoseconds. `None` disables
    /// deadline handling. When half the budget is spent before a code
    /// block's decode, the decoder iteration cap is halved (recorded as
    /// a `deadline_clamps` metrics event); once the budget is exhausted
    /// the packet aborts with [`PipelineError::DeadlineExceeded`].
    pub deadline_ns: Option<u64>,
    /// Decode a transport block's equal-K code blocks through the
    /// multi-block-per-register [`NativeBatchTurboDecoder`] — four per
    /// zmm on AVX-512BW hosts, two per ymm on AVX2, bit-exact narrower
    /// fallbacks below that. Only meaningful under
    /// [`DecoderBackend::Native`].
    ///
    /// **Deprecated as an opt-in**: the stage-graph runtime
    /// ([`crate::stagegraph::StageGraph`], the default uplink path in
    /// [`crate::runner::run_uplink_multicore`]) always decodes in batch
    /// semantics — [`UplinkPipeline::prepare`] stages every code block
    /// for cross-packet pooling regardless of this flag, so under the
    /// stage graph the effective default is *on*. The flag now only
    /// governs the direct [`UplinkPipeline::process`] call, where it
    /// stays off by default because batched decoding runs a fixed
    /// iteration count (no per-block CRC early stop), which changes the
    /// reported `decoder_iterations` — the decoded bits stay
    /// oracle-exact either way.
    pub batch_decode: bool,
    /// Fused APCM ingest (the default): under [`DecoderBackend::Native`]
    /// the de-rate-matcher writes triple-interleaved clusters and one
    /// mask/merge pass ([`vran_arrange::fused_ingest_into`]) segregates
    /// them straight into pooled per-block stream buffers — replacing
    /// the de-rate-match copy → stream multiplex → APCM de-interleave →
    /// per-block clone chain with a single pass and zero intermediate
    /// full-buffer copies. Bit-exact with the unfused chain (enforced
    /// across all 188 QPP sizes and every ISA tier by the
    /// `fused_exactness` sweep); `false` keeps the unfused chain for
    /// A/B comparison.
    pub fused_ingest: bool,
    /// Native SIMD front end (the default): soft demapping runs the
    /// Q11 fixed-point max-log kernels ([`vran_phy::demap`]) at the
    /// best available ISA tier, LLR descrambling runs the
    /// word-parallel Gold generator with SIMD sign-select, and CRC
    /// attach/check run the table/clmul kernels — each bit-exact with
    /// its scalar oracle (enforced by the `frontend_exactness` sweep).
    /// `false` keeps the f32 reference demapper, bit-serial
    /// descrambler and bit-serial CRC for A/B comparison. Note the
    /// fixed-point demapper's LLRs differ from the f32 reference's by
    /// quantization (≤ a couple of LSBs), so decode iteration counts
    /// can shift between the two settings; decoded bits are unaffected
    /// at operating SNR.
    pub frontend_simd: bool,
    /// Per-stage circuit breakers (equalizer / demapper / decoder).
    /// `None` (the default) disables them — fault-injection soaks and
    /// the gated benchgate suites predate breakers and pin exact error
    /// counts, so the gate is strictly opt-in. `Some(cfg)` arms all
    /// three breakers with the given trip/cooldown tuning; trips,
    /// resets and fast-fails are observable in
    /// [`crate::metrics::PipelineMetrics`].
    pub breakers: Option<BreakerConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            width: RegWidth::Sse128,
            mechanism: Mechanism::Baseline,
            backend: DecoderBackend::Native,
            encoder_backend: EncoderBackend::Packed,
            modulation: Modulation::Qam16,
            snr_db: 14.0,
            decoder_iterations: 6,
            rate_x1024: 2048,
            fading: false,
            seed: 1,
            deadline_ns: None,
            batch_decode: false,
            fused_ingest: true,
            frontend_simd: true,
            breakers: None,
        }
    }
}

/// Wall-clock nanoseconds per pipeline stage for one packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageNanos {
    /// Encoder side: CRC + segmentation + turbo encoding + rate match.
    pub encode: u64,
    /// Scrambling + modulation + OFDM, both directions.
    pub transport: u64,
    /// Soft demapping + descrambling + de-rate-matching.
    pub demap: u64,
    /// The data arrangement process (the paper's subject).
    pub arrangement: u64,
    /// Turbo decoding (the "calculation" process).
    pub decode: u64,
}

impl StageNanos {
    /// Total across stages.
    pub fn total(&self) -> u64 {
        self.encode + self.transport + self.demap + self.arrangement + self.decode
    }
}

/// A packet whose receive path ran up to (but not including) turbo
/// decode: ingress, encode, channel, demap, de-rate-match and
/// arrangement are done, and each code block is staged as a
/// [`TurboLlrs`] decode task ready for cross-packet batch pooling.
///
/// Produced by [`UplinkPipeline::prepare`], consumed by
/// [`UplinkPipeline::complete`] once the stage-graph runtime has
/// decoded the tasks (in whatever quad/pair/single grouping lane
/// occupancy allowed). Everything the completion half needs — the
/// segmentation plan, the original frame for the delivery check, the
/// fault drawn for this packet, partial stage timings — rides along so
/// the packet can retire out of order, long after the source `Packet`
/// is gone.
#[derive(Debug)]
pub struct PreparedUplink {
    pub(crate) start: Instant,
    pub(crate) fault: FaultKind,
    pub(crate) frame: Vec<u8>,
    pub(crate) tb_bits: usize,
    pub(crate) seg: Segmentation,
    pub(crate) coded_bits: usize,
    pub(crate) nanos: StageNanos,
    pub(crate) iter_cap: usize,
    pub(crate) tasks: Vec<TurboLlrs>,
}

impl PreparedUplink {
    /// Number of staged decode tasks (one per code block).
    pub fn code_blocks(&self) -> usize {
        self.tasks.len()
    }

    /// Decoder iteration cap the staged tasks must run with (already
    /// deadline-clamped when the packet spent half its budget before
    /// staging).
    pub fn iter_cap(&self) -> usize {
        self.iter_cap
    }

    /// When the packet's processing deadline expires, if one is
    /// configured — the stage-graph runtime flushes partial batches
    /// before this instant passes.
    pub fn deadline(&self, budget_ns: Option<u64>) -> Option<Instant> {
        budget_ns.map(|b| self.start + std::time::Duration::from_nanos(b))
    }
}

/// Outcome of [`UplinkPipeline::prepare`]: either decode tasks to pool
/// (the common Native-backend case) or a packet the serial path already
/// finished end to end.
#[derive(Debug)]
pub enum Admission {
    /// Code blocks staged for pooled batch decode; hand the
    /// [`PreparedUplink`] back to [`UplinkPipeline::complete`] with the
    /// decoded bits to finish the packet.
    Staged(PreparedUplink),
    /// The packet already completed serially — because the Scalar
    /// backend (configured or via the degradation ladder) decodes
    /// inline, or because it failed before reaching decode. Metrics and
    /// the degradation ladder are already settled.
    Ready(Result<PacketResult, PipelineError>),
}

/// Internal outcome of the shared pipeline body: completed inline, or
/// staged for pooled decode.
enum Phase {
    Complete(PacketResult),
    Staged(Box<PreparedUplink>),
}

/// Result of pushing one packet through the loop. Produced only when
/// the frame survived the complete path (any failure is a typed
/// [`PipelineError`] instead).
#[derive(Debug, Clone)]
pub struct PacketResult {
    /// Transport-block size in bits (incl. CRC24A).
    pub tb_bits: usize,
    /// Code blocks the TB split into.
    pub code_blocks: usize,
    /// Total coded (rate-matched) bits on the air.
    pub coded_bits: usize,
    /// Decoder iterations used, summed over code blocks.
    pub decoder_iterations: usize,
    /// Per-stage wall-clock time.
    pub nanos: StageNanos,
}

/// Receive-side working state reused across packets so the per-code-
/// block hot loop performs no heap allocation after warm-up: cached
/// per-K decoders and rate matchers (QPP/wmap table construction is
/// itself allocation-heavy) plus staging buffers that retain capacity.
///
/// Lives behind a `RefCell` because `process` takes `&self`; pipelines
/// are per-worker (the threaded runner builds one per thread), so the
/// single-threaded interior mutability is sufficient.
#[derive(Debug, Clone, Default)]
struct HotState {
    /// Native decoders, keyed by block size K.
    natives: Vec<NativeTurboDecoder>,
    /// Batched native decoders, keyed by block size K (iteration count
    /// recorded alongside — deadline clamping can change it).
    batches: Vec<(usize, NativeBatchTurboDecoder)>,
    /// Scalar decoders, keyed by block size K.
    scalars: Vec<(usize, TurboDecoder)>,
    /// Rate matchers, keyed by per-stream length `d = K + 4`.
    rms: Vec<(usize, RateMatcher)>,
    /// Packed-word encoders, keyed by block size K (transmit side).
    packed_encs: Vec<PackedTurboEncoder>,
    /// Packed rate matchers, keyed by per-stream length `d = K + 4`.
    packed_rms: Vec<(usize, PackedRateMatcher)>,
    /// Packed-encoder working buffers (transmit side).
    enc_scratch: EncodeScratch,
    /// Compacted circular-buffer staging for the packed rate matcher.
    wbuf: Vec<u64>,
    /// Rate-matched readout staging (packed words).
    ebuf: Vec<u64>,
    /// De-rate-matcher output staging (`d⁽⁰⁾ d⁽¹⁾ d⁽²⁾`, length K+4).
    dllr: [Vec<Llr>; 3],
    /// Interleaved-triple staging for the arrangement step (3K LLRs).
    inter: Vec<Llr>,
    /// Arranged streams the native decoder reads (unfused serial path).
    arranged: SoftStreams,
    /// Free list of per-block stream buffers for staged decode tasks:
    /// the ingest step pops one (retaining its capacity), the decode
    /// consumer pushes it back ([`UplinkPipeline::recycle_streams`]),
    /// so batching performs no steady-state allocation — replacing the
    /// per-block `SoftStreams` clones staging used to take.
    llr_pool: Vec<SoftStreams>,
    /// Staged-batch-decoder working buffers (quad/pair kernels).
    batch_scratch: BatchScratch,
    /// Native-decoder working buffers.
    scratch: DecodeScratch,
    /// Decoded-bit buffers, one per code-block index, reused across
    /// packets and handed to desegmentation as a slice.
    bits_pool: Vec<Vec<u8>>,
    /// Degradation ladder: consecutive decode-failure packets.
    consecutive_failures: u32,
    /// Degradation ladder: consecutive successes while degraded.
    consecutive_successes: u32,
    /// Whether the Native backend is currently degraded to Scalar.
    degraded: bool,
}

impl HotState {
    /// Index of the cached native decoder for block size `k`.
    fn native_index(&mut self, k: usize, iterations: usize) -> usize {
        match self.natives.iter().position(|d| d.k() == k) {
            Some(i) => i,
            None => {
                self.natives.push(NativeTurboDecoder::new(k, iterations));
                self.natives.len() - 1
            }
        }
    }

    /// Index of the cached batch decoder for block size `k` running
    /// exactly `iterations` iterations (stale-iteration entries for
    /// the same K are evicted — only deadline clamping creates them).
    fn batch_index(&mut self, k: usize, iterations: usize) -> usize {
        match self
            .batches
            .iter()
            .position(|(it, d)| d.k() == k && *it == iterations)
        {
            Some(i) => i,
            None => {
                self.batches.retain(|(_, d)| d.k() != k);
                self.batches
                    .push((iterations, NativeBatchTurboDecoder::new(k, iterations)));
                self.batches.len() - 1
            }
        }
    }

    /// Index of the cached scalar decoder for block size `k`.
    fn scalar_index(&mut self, k: usize, iterations: usize) -> usize {
        match self.scalars.iter().position(|(dk, _)| *dk == k) {
            Some(i) => i,
            None => {
                self.scalars.push((k, TurboDecoder::new(k, iterations)));
                self.scalars.len() - 1
            }
        }
    }

    /// Index of the cached rate matcher for stream length `d`.
    fn rm_index(&mut self, d: usize) -> usize {
        match self.rms.iter().position(|(rd, _)| *rd == d) {
            Some(i) => i,
            None => {
                self.rms.push((d, RateMatcher::new(d)));
                self.rms.len() - 1
            }
        }
    }

    /// Index of the cached packed encoder for block size `k`.
    fn packed_enc_index(&mut self, k: usize) -> usize {
        match self.packed_encs.iter().position(|e| e.k() == k) {
            Some(i) => i,
            None => {
                self.packed_encs.push(PackedTurboEncoder::new(k));
                self.packed_encs.len() - 1
            }
        }
    }

    /// Index of the cached packed rate matcher for stream length `d`.
    fn packed_rm_index(&mut self, d: usize) -> usize {
        match self.packed_rms.iter().position(|(rd, _)| *rd == d) {
            Some(i) => i,
            None => {
                self.packed_rms.push((d, PackedRateMatcher::new(d)));
                self.packed_rms.len() - 1
            }
        }
    }

    /// Pop a `k`-element stream buffer off the free list (or allocate a
    /// fresh one when the pool is dry). Counted per the staging metrics
    /// taxonomy: `staging_allocs` for a dry pool, `staging_reuses` when
    /// the recycled buffer's capacity already covered `k`,
    /// `staging_reallocs` when the resize had to grow it (a K upswitch
    /// beyond anything the pool has seen).
    fn acquire_streams(&mut self, k: usize, m: Option<&PipelineMetrics>) -> SoftStreams {
        match self.llr_pool.pop() {
            Some(mut s) => {
                let grew = s.sys.capacity() < k || s.p1.capacity() < k || s.p2.capacity() < k;
                s.sys.resize(k, 0);
                s.p1.resize(k, 0);
                s.p2.resize(k, 0);
                if let Some(m) = m {
                    if grew {
                        m.staging_reallocs.inc();
                    } else {
                        m.staging_reuses.inc();
                    }
                }
                s
            }
            None => {
                if let Some(m) = m {
                    m.staging_allocs.inc();
                }
                SoftStreams::zeros(k)
            }
        }
    }
}

/// Free-list cap: `MAX_CODE_BLOCKS` packets can be in flight per lane
/// in the stage graph's pools; beyond this the buffers are dropped
/// rather than hoarded.
const LLR_POOL_CAP: usize = 4 * MAX_CODE_BLOCKS;

/// The uplink pipeline (shared by the downlink driver — the PHY chain
/// is symmetric for our purposes; only the traffic direction and DCI
/// handling differ in `runner`).
#[derive(Debug, Clone)]
pub struct UplinkPipeline {
    cfg: PipelineConfig,
    ofdm: OfdmConfig,
    c_init: u32,
    metrics: Option<Arc<PipelineMetrics>>,
    hot: RefCell<HotState>,
    faults: RefCell<Option<FaultInjector>>,
    /// Flight recorder receiving one trace event per settled packet.
    recorder: Option<Arc<FlightRecorder>>,
    /// Armed circuit breakers (when `cfg.breakers` is set), indexed by
    /// [`BreakerStage`] discriminant.
    breakers: RefCell<Option<[CircuitBreaker; BreakerStage::COUNT]>>,
    /// Trace context: UE id of the packet being processed (set by the
    /// stage-graph/runner drivers; 0 for direct `process` callers).
    trace_ue: Cell<u64>,
    /// Trace context: per-pipeline packet ordinal.
    trace_seq: Cell<u64>,
    /// Trace context: first code-block K of the packet in flight.
    trace_k: Cell<u16>,
}

/// Run `f`, recording its latency under `stage` when a live metrics
/// registry is attached. The `None` arm compiles to a plain call — no
/// clock reads when metrics are off.
#[inline]
pub(crate) fn timed<T>(m: Option<&PipelineMetrics>, stage: Stage, f: impl FnOnce() -> T) -> T {
    match m {
        Some(m) => {
            let t = Instant::now();
            let r = f();
            m.record_stage(stage, t.elapsed().as_nanos() as u64);
            r
        }
        None => f(),
    }
}

impl UplinkPipeline {
    /// Build a pipeline.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            ofdm: OfdmConfig::lte5mhz(),
            c_init: GoldSequence::c_init_pxsch(0x1234, 0, 4, 42),
            metrics: None,
            hot: RefCell::new(HotState::default()),
            faults: RefCell::new(None),
            recorder: None,
            breakers: RefCell::new(
                cfg.breakers
                    .map(|b| std::array::from_fn(|_| CircuitBreaker::new(b))),
            ),
            trace_ue: Cell::new(0),
            trace_seq: Cell::new(0),
            trace_k: Cell::new(0),
        }
    }

    /// Build a pipeline that records per-stage latency histograms and
    /// packet counters into `metrics`.
    pub fn with_metrics(cfg: PipelineConfig, metrics: Arc<PipelineMetrics>) -> Self {
        let mut p = Self::new(cfg);
        p.metrics = Some(metrics);
        p
    }

    /// Build a pipeline with a deterministic fault injector attached:
    /// one [`FaultKind`] decision is drawn per packet and applied at
    /// the matching stage.
    pub fn with_faults(cfg: PipelineConfig, injector: FaultInjector) -> Self {
        let mut p = Self::new(cfg);
        p.faults = RefCell::new(Some(injector));
        p
    }

    /// Attach (or replace) the fault injector on an existing pipeline.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = RefCell::new(Some(injector));
    }

    /// Per-kind injected-fault counts, when an injector is attached.
    pub fn fault_counts(&self) -> Option<[u64; FaultKind::COUNT]> {
        self.faults.borrow().as_ref().map(|f| *f.injected())
    }

    /// Whether the degradation ladder currently forces the scalar
    /// backend.
    pub fn is_degraded(&self) -> bool {
        self.hot.borrow().degraded
    }

    /// Attach a flight recorder: every settled packet (and breaker
    /// fast-fail) records one [`TraceEvent`].
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Set the UE id stamped on subsequent trace events (the
    /// stage-graph and runner drivers call this per admission).
    #[inline]
    pub fn set_trace_ue(&self, ue: u64) {
        self.trace_ue.set(ue);
    }

    /// Current state of one circuit breaker; `None` when breakers are
    /// not armed ([`PipelineConfig::breakers`]).
    pub fn breaker_state(&self, stage: BreakerStage) -> Option<BreakerState> {
        self.breakers
            .borrow()
            .as_ref()
            .map(|b| b[stage as usize].state())
    }

    /// `(trips, resets)` totals for one circuit breaker; `None` when
    /// breakers are not armed.
    pub fn breaker_counts(&self, stage: BreakerStage) -> Option<(u64, u64)> {
        self.breakers
            .borrow()
            .as_ref()
            .map(|b| (b[stage as usize].trips(), b[stage as usize].resets()))
    }

    /// Admission gate: when a breaker is open, consume one cooldown
    /// tick and fast-fail the packet with a synthesized error of the
    /// breaker's category — the protected stages never run, metrics
    /// and the trace record the packet, but the degradation ladder and
    /// the breakers themselves see nothing (a fast-fail carries no
    /// information about stage health).
    fn breaker_fastfail(&self, m: Option<&PipelineMetrics>) -> Option<PipelineError> {
        let mut guard = self.breakers.borrow_mut();
        let breakers = guard.as_mut()?;
        let stage = BreakerStage::ALL
            .into_iter()
            .find(|&s| breakers[s as usize].should_fast_fail())?;
        let err = match stage {
            BreakerStage::Equalizer => PipelineError::DeadlineExceeded {
                budget_ns: self.cfg.deadline_ns.unwrap_or(0),
                elapsed_ns: 0,
            },
            BreakerStage::Demapper => PipelineError::MalformedFrame {
                reason: FrameFault::Empty,
            },
            BreakerStage::Decoder => PipelineError::DecoderDiverged(DecodeFailure::default()),
        };
        drop(guard);
        if let Some(m) = m {
            m.record_error(err.category());
            m.record_packet(false, 0, 0);
            m.breaker_fastfails.inc();
        }
        if let Some(rec) = &self.recorder {
            let seq = self.trace_seq.get();
            self.trace_seq.set(seq + 1);
            rec.record(TraceEvent::packet(
                self.trace_ue.get(),
                seq,
                0,
                self.backend_byte(),
                Some(err.category()),
                0,
                0,
                0,
            ));
        }
        Some(err)
    }

    /// Compact backend discriminant for trace events: 0 = native,
    /// 1 = scalar (configured), 2 = native degraded to scalar.
    fn backend_byte(&self) -> u8 {
        if self.cfg.backend == DecoderBackend::Scalar {
            1
        } else if self.hot.borrow().degraded {
            2
        } else {
            0
        }
    }

    /// The attached metrics registry, if any.
    pub fn metrics(&self) -> Option<&Arc<PipelineMetrics>> {
        self.metrics.as_ref()
    }

    /// Return a staged task's stream buffers to the free list so the
    /// next ingest reuses their capacity instead of allocating. The
    /// stage-graph runtime calls this after a batch launch scatters its
    /// decoded bits; the serial batch path recycles inline.
    pub(crate) fn recycle_streams(&self, streams: SoftStreams) {
        let hot = &mut *self.hot.borrow_mut();
        if hot.llr_pool.len() < LLR_POOL_CAP {
            hot.llr_pool.push(streams);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Process one framed packet through the complete loop.
    ///
    /// Every failure classifies into a [`PipelineError`]; malformed or
    /// hostile input must never panic (the fault-injection soak pushes
    /// tens of thousands of corrupted packets through here to enforce
    /// that).
    pub fn process(&self, packet: &Packet) -> Result<PacketResult, PipelineError> {
        let m = self.metrics.as_deref().filter(|m| m.is_enabled());
        if let Some(e) = self.breaker_fastfail(m) {
            return Err(e);
        }
        let fault = match self.faults.borrow_mut().as_mut() {
            Some(f) => f.next_kind(),
            None => FaultKind::Clean,
        };
        let result = self
            .process_inner(packet, fault, m, false)
            .map(|ph| match ph {
                Phase::Complete(r) => r,
                Phase::Staged(_) => unreachable!("stage=false never stages"),
            });
        self.settle(&result, m);
        result
    }

    /// Run a packet's receive path up to the decode stage and stage its
    /// code blocks as pooled decode tasks (the stage-graph runtime's
    /// admission half).
    ///
    /// Batch-decode semantics are always on here regardless of
    /// [`PipelineConfig::batch_decode`] — cross-packet pooling is the
    /// point. The Scalar/serial fallback ladder stays intact: when the
    /// configured backend is `Scalar`, or the degradation ladder has
    /// demoted a `Native` pipeline, the packet is processed serially to
    /// completion and returned as [`Admission::Ready`] (already
    /// settled). Pre-decode failures (malformed frames, segmentation
    /// overflows, blown deadlines) also come back `Ready`.
    pub fn prepare(&self, packet: &Packet) -> Admission {
        let m = self.metrics.as_deref().filter(|m| m.is_enabled());
        if let Some(e) = self.breaker_fastfail(m) {
            return Admission::Ready(Err(e));
        }
        let fault = match self.faults.borrow_mut().as_mut() {
            Some(f) => f.next_kind(),
            None => FaultKind::Clean,
        };
        match self.process_inner(packet, fault, m, true) {
            Ok(Phase::Staged(p)) => Admission::Staged(*p),
            Ok(Phase::Complete(r)) => {
                let r = Ok(r);
                self.settle(&r, m);
                Admission::Ready(r)
            }
            Err(e) => {
                let r = Err(e);
                self.settle(&r, m);
                Admission::Ready(r)
            }
        }
    }

    /// Finish a packet staged by [`Self::prepare`]: post-hoc per-block
    /// CRC24B classification (the batch kernels have no in-loop early
    /// stop), desegmentation, CRC24A and the L2 delivery check —
    /// exactly the serial batch path's tail — then metrics and
    /// degradation-ladder settlement.
    ///
    /// `decoded` holds one bit buffer per staged task, in task order;
    /// `iterations` is the decoder-iteration total across the packet's
    /// blocks; `decode_ns` is the wall-clock decode share attributed to
    /// this packet by the batch launches it rode.
    pub fn complete(
        &self,
        prep: PreparedUplink,
        decoded: &[Vec<u8>],
        iterations: usize,
        decode_ns: u64,
    ) -> Result<PacketResult, PipelineError> {
        let m = self.metrics.as_deref().filter(|m| m.is_enabled());
        debug_assert_eq!(decoded.len(), prep.seg.c, "one bit buffer per block");
        let mut nanos = prep.nanos;
        nanos.decode += decode_ns;
        let mut failed_blocks = 0usize;
        if decoded.len() > 1 {
            let crc_imp = if self.cfg.frontend_simd {
                best_crc()
            } else {
                CrcImpl::BitSerial
            };
            for bits in decoded {
                if CRC24B.check_with(crc_imp, bits).is_none() {
                    failed_blocks += 1;
                }
            }
        }
        let result = self.finish(
            m,
            prep.fault,
            &prep.frame,
            &prep.seg,
            decoded,
            failed_blocks,
            prep.tb_bits,
            prep.coded_bits,
            iterations,
            nanos,
        );
        self.settle(&result, m);
        result
    }

    /// Post-packet bookkeeping: metrics counters, the degradation
    /// ladder, circuit-breaker feedback and the flight-recorder trace.
    fn settle(&self, result: &Result<PacketResult, PipelineError>, m: Option<&PipelineMetrics>) {
        let backend = self.backend_byte();
        if let Some(breakers) = self.breakers.borrow_mut().as_mut() {
            match result {
                Ok(_) => {
                    // A full success clears every stage's error streak
                    // (the whole receive path ran).
                    for s in BreakerStage::ALL {
                        if breakers[s as usize].on_outcome(true) {
                            if let Some(m) = m {
                                m.breaker_resets.inc();
                            }
                        }
                    }
                }
                Err(e) => {
                    let s = BreakerStage::for_category(e.category());
                    if breakers[s as usize].on_outcome(false) {
                        if let Some(m) = m {
                            m.breaker_trips.inc();
                        }
                    }
                }
            }
        }
        if let Some(rec) = &self.recorder {
            let seq = self.trace_seq.get();
            self.trace_seq.set(seq + 1);
            let (category, prepare_ns, decode_ns, total_ns) = match result {
                Ok(r) => (
                    None,
                    r.nanos.encode + r.nanos.transport + r.nanos.demap + r.nanos.arrangement,
                    r.nanos.decode,
                    r.nanos.total(),
                ),
                Err(e) => (Some(e.category()), 0, 0, 0),
            };
            rec.record(TraceEvent::packet(
                self.trace_ue.get(),
                seq,
                self.trace_k.get() as usize,
                backend,
                category,
                prepare_ns,
                decode_ns,
                total_ns,
            ));
        }
        let hot = &mut *self.hot.borrow_mut();
        match result {
            Ok(r) => {
                if let Some(m) = m {
                    m.record_packet(true, r.code_blocks, r.decoder_iterations);
                }
                hot.consecutive_failures = 0;
                if hot.degraded {
                    hot.consecutive_successes += 1;
                    if hot.consecutive_successes >= RESTORE_AFTER {
                        hot.degraded = false;
                        hot.consecutive_successes = 0;
                        if let Some(m) = m {
                            m.backend_restorations.inc();
                        }
                    }
                }
            }
            Err(e) => {
                if let Some(m) = m {
                    m.record_error(e.category());
                    let f = e.decode_failure().copied().unwrap_or_default();
                    m.record_packet(false, f.code_blocks, f.decoder_iterations);
                }
                // Only decode-quality failures climb the ladder; a
                // malformed frame or a blown deadline says nothing
                // about the decoder backend.
                if matches!(
                    e.category(),
                    ErrorCategory::CrcMismatch | ErrorCategory::DecoderDiverged
                ) {
                    hot.consecutive_successes = 0;
                    hot.consecutive_failures += 1;
                    if !hot.degraded
                        && self.cfg.backend == DecoderBackend::Native
                        && hot.consecutive_failures >= DEGRADE_AFTER
                    {
                        hot.degraded = true;
                        hot.consecutive_failures = 0;
                        if let Some(m) = m {
                            m.backend_degradations.inc();
                        }
                    }
                }
            }
        }
    }

    /// The shared pipeline body behind [`Self::process`] and
    /// [`Self::prepare`]. With `stage` set, the Native backend's code
    /// blocks are arranged and then *staged* (batch semantics forced —
    /// see [`PipelineConfig::batch_decode`]) instead of decoded
    /// inline; the Scalar backend (configured or ladder-degraded)
    /// still completes serially.
    fn process_inner(
        &self,
        packet: &Packet,
        fault: FaultKind,
        m: Option<&PipelineMetrics>,
        stage: bool,
    ) -> Result<Phase, PipelineError> {
        let cfg = &self.cfg;
        let start = Instant::now();
        let mut nanos = StageNanos::default();
        self.trace_k.set(0); // until segmentation fixes the real K

        if fault == FaultKind::WorkerPanic {
            // Deliberately violent: exercises the runner's per-worker
            // catch_unwind isolation, not the error taxonomy.
            panic!("fault injection: deliberate worker panic");
        }

        // ---- ingress: frame-level faults, then header validation ----
        let mutated = self
            .faults
            .borrow_mut()
            .as_mut()
            .and_then(|f| f.mutate_frame(fault, &packet.frame));
        let frame: &[u8] = mutated.as_deref().unwrap_or(&packet.frame);
        if frame.is_empty() {
            return Err(PipelineError::MalformedFrame {
                reason: FrameFault::Empty,
            });
        }
        ParsedPacket::parse(frame)?;

        // ---- transmitter: L2 encapsulation, TB build, encode ----
        let t0 = Instant::now();
        // PDCP/RLC/MAC framing (per-packet bearer state; stream
        // continuity is exercised by the l2 module's own tests)
        let pdu = crate::l2::BearerTx::default()
            .encapsulate(frame, frame.len() + crate::l2::L2_OVERHEAD)
            .expect("TB sized to fit");
        let frame_bits = unpack_msb(&pdu, pdu.len() * 8);
        let tb = timed(m, Stage::Crc, || {
            if cfg.frontend_simd {
                let t = Instant::now();
                let tb = CRC24A.attach_with(best_crc(), &frame_bits);
                if let Some(m) = m {
                    m.record_frontend_crc(t.elapsed().as_nanos() as u64);
                }
                tb
            } else {
                CRC24A.attach_with(CrcImpl::BitSerial, &frame_bits)
            }
        });
        let seg = timed(m, Stage::Segment, || Segmentation::try_plan(tb.len()))?;
        self.trace_k.set(seg.k_of(0) as u16);
        if seg.c > MAX_CODE_BLOCKS {
            return Err(PipelineError::SegmentationOverflow {
                detail: SegFault::TooManyBlocks {
                    blocks: seg.c,
                    max: MAX_CODE_BLOCKS,
                },
            });
        }
        let blocks = timed(m, Stage::Segment, || seg.try_segment(&tb))?;
        let mut coded = Vec::new();
        let mut block_e = Vec::with_capacity(blocks.len());
        {
            let hot = &mut *self.hot.borrow_mut();
            if let Some(m) = m {
                if cfg.encoder_backend == EncoderBackend::Packed {
                    if EncoderIsa::best() == EncoderIsa::Word64 {
                        // The packed fast path is selected but the host
                        // (or the test ISA ceiling) offers no SIMD:
                        // encoding runs the portable u64 kernel. Same
                        // observability story as native_simd_fallbacks
                        // on the receive side.
                        m.packed_encoder_fallbacks.inc();
                    }
                    if EncoderIsa::best() < EncoderIsa::Avx512 {
                        // Encoding runs below the widest (zmm) tier —
                        // the deployment lost its 512-bit throughput.
                        m.zmm_encoder_fallbacks.inc();
                    }
                }
            }
            for blk in &blocks {
                let k = blk.len();
                let e = ((k as u64 * cfg.rate_x1024 as u64 / 1024) as usize)
                    .next_multiple_of(cfg.modulation.bits_per_symbol() * 2)
                    .min(3 * (k + 4) * 2); // cap repetition at 2×
                match cfg.encoder_backend {
                    EncoderBackend::Scalar => {
                        let enc = TurboEncoder::new(k);
                        let cw = timed(m, Stage::Encode, || enc.encode(blk));
                        let rm = RateMatcher::new(k + 4);
                        let d = cw.to_dstreams();
                        timed(m, Stage::RateMatch, || {
                            coded.extend(rm.rate_match(&d, e, 0))
                        });
                    }
                    EncoderBackend::Packed => {
                        let ei = hot.packed_enc_index(k);
                        let rmi = hot.packed_rm_index(k + 4);
                        timed(m, Stage::Encode, || {
                            hot.packed_encs[ei].encode_dstreams_into(blk, &mut hot.enc_scratch)
                        });
                        timed(m, Stage::RateMatch, || {
                            let rm = &hot.packed_rms[rmi].1;
                            rm.pack_circular_into(hot.enc_scratch.dstream_words(), &mut hot.wbuf)
                                .expect("scratch streams sized to d");
                            rm.try_rate_match_packed_into(&hot.wbuf, e, 0, &mut hot.ebuf)
                                .expect("rv 0 always valid");
                            extend_bits_from_words(&hot.ebuf, e, &mut coded);
                        });
                    }
                }
                block_e.push(e);
            }
        }
        nanos.encode = t0.elapsed().as_nanos() as u64;

        // ---- scramble, modulate, OFDM, channel ----
        let t0 = Instant::now();
        let mut tx_bits = coded;
        // pad to a whole number of symbols
        let bps = cfg.modulation.bits_per_symbol();
        let padded_len = tx_bits.len().next_multiple_of(bps);
        tx_bits.resize(padded_len, 0);
        let symbols = timed(m, Stage::Modulate, || {
            if cfg.frontend_simd {
                scramble_bits(&mut tx_bits, self.c_init);
            } else {
                vran_phy::scrambler::scramble_bits_serial(&mut tx_bits, self.c_init);
            }
            cfg.modulation.modulate(&tx_bits)
        });
        let (rx_symbols, scale) = timed(m, Stage::Ofdm, || {
            if cfg.fading {
                self.fading_pass(&symbols)
            } else {
                let air = self.ofdm.modulate_stream(&symbols);
                let mut channel = AwgnChannel::new(cfg.snr_db, cfg.seed);
                let rx_air = channel.apply(&air);
                let rx = self.ofdm.demodulate_stream(&rx_air, symbols.len());
                (rx, (channel.llr_scale() / 8.0).clamp(0.25, 16.0))
            }
        });
        nanos.transport = t0.elapsed().as_nanos() as u64;

        // ---- demap, descramble, de-rate-match ----
        let t0 = Instant::now();
        if let Some(m) = m {
            if cfg.frontend_simd {
                m.frontend_packets.inc();
                if best_demap() == DemapImpl::Scalar
                    || best_descramble() == DescrambleImpl::ScalarWord
                {
                    // The SIMD front end is requested but the host (or
                    // the test ISA ceiling) runs a scalar kernel: the
                    // deployment lost its front-end speedup.
                    m.frontend_fallbacks.inc();
                }
            }
        }
        let mut llrs = timed(m, Stage::Demap, || {
            if cfg.frontend_simd {
                let t_demap = Instant::now();
                let mut llrs = Vec::new();
                demap_into(best_demap(), cfg.modulation, &rx_symbols, scale, &mut llrs);
                llrs.truncate(padded_len);
                let demap_ns = t_demap.elapsed().as_nanos() as u64;
                let t_descramble = Instant::now();
                descramble_llrs_with(best_descramble(), &mut llrs, self.c_init);
                if let Some(m) = m {
                    m.record_frontend_demap(demap_ns, t_descramble.elapsed().as_nanos() as u64);
                }
                llrs
            } else {
                let mut llrs = cfg.modulation.demodulate(&rx_symbols, scale);
                llrs.truncate(padded_len);
                descramble_llrs(&mut llrs, self.c_init);
                llrs
            }
        });
        nanos.demap = t0.elapsed().as_nanos() as u64;

        // receive-side LLR faults model a corrupted fronthaul buffer
        if matches!(fault, FaultKind::FlipLlrSigns | FaultKind::SaturateLlrs) {
            if let Some(f) = self.faults.borrow_mut().as_mut() {
                f.mutate_llrs(fault, &mut llrs);
            }
        }

        // ---- per code block: de-rate-match, ARRANGE, decode ----
        let hot = &mut *self.hot.borrow_mut();
        let backend = if hot.degraded && cfg.backend == DecoderBackend::Native {
            DecoderBackend::Scalar
        } else {
            cfg.backend
        };
        let batching = (cfg.batch_decode || stage) && backend == DecoderBackend::Native;
        if let Some(m) = m {
            if backend == DecoderBackend::Native && DecoderIsa::best() == DecoderIsa::Scalar {
                // The fast path is selected but the host (or the test
                // ISA ceiling) offers no SIMD: the native decoder runs
                // its scalar kernels. Worth observing — it means the
                // deployment lost its SIMD speedup.
                m.native_simd_fallbacks.inc();
            }
            if batching && !NativeBatchTurboDecoder::is_zmm_accelerated() {
                // Batched decode is selected but the host (or the test
                // ISA ceiling) lacks AVX-512BW: blocks decode through
                // the narrower pair/single kernels, bit-exactly.
                m.batch_simd_fallbacks.inc();
            }
        }
        let scratch_allocs0 = hot.scratch.allocations();
        let scratch_reuses0 = hot.scratch.reuses();
        if hot.bits_pool.len() < blocks.len() {
            hot.bits_pool.resize_with(blocks.len(), Vec::new);
        }
        let mut iterations = 0;
        let mut pos = 0;
        let mut failed_blocks = 0usize;
        let mut batch_inputs: Vec<TurboLlrs> = Vec::new();
        // Fused APCM ingest applies only to the Native backend; when
        // the degradation ladder demotes a fused-configured pipeline to
        // Scalar, the blocks run the unfused chain (counted below).
        let fused = cfg.fused_ingest && backend == DecoderBackend::Native;
        for (i, blk) in blocks.iter().enumerate() {
            let k = blk.len();
            let e = block_e[i];
            let rmi = hot.rm_index(k + 4);
            if let Some(m) = m {
                if cfg.fused_ingest && !fused && cfg.backend == DecoderBackend::Native {
                    m.fused_ingest_fallbacks.inc();
                }
            }
            let t0 = Instant::now();
            let tails = if fused {
                // The fused chain's only staging write: the
                // de-rate-matcher accumulates straight into the
                // triple-interleaved cluster layout (Fig 8a), so no
                // separate multiplex pass runs before arrangement.
                timed(m, Stage::RateMatch, || {
                    hot.rms[rmi].1.try_de_rate_match_interleaved_into(
                        &llrs[pos..pos + e],
                        0,
                        &mut hot.inter,
                    )
                })?;
                TailLlrs::from_interleaved(&hot.inter, k)
            } else {
                timed(m, Stage::RateMatch, || {
                    hot.rms[rmi]
                        .1
                        .try_de_rate_match_into(&llrs[pos..pos + e], 0, &mut hot.dllr)
                })?;
                TailLlrs::from_dstreams(&hot.dllr, k)
            };
            pos += e;
            nanos.demap += t0.elapsed().as_nanos() as u64;

            // Deadline gate before the expensive decode: abort when the
            // budget is gone, halve the iteration cap when half is.
            // (In batch mode the decode happens after this loop, so a
            // single gate guards the batched phase instead.)
            let mut iter_cap = cfg.decoder_iterations;
            if !batching {
                if let Some(budget) = cfg.deadline_ns {
                    let elapsed = start.elapsed().as_nanos() as u64;
                    if elapsed >= budget {
                        return Err(PipelineError::DeadlineExceeded {
                            budget_ns: budget,
                            elapsed_ns: elapsed,
                        });
                    }
                    if elapsed.saturating_mul(2) >= budget {
                        iter_cap = (cfg.decoder_iterations / 2).max(1);
                        if let Some(m) = m {
                            m.deadline_clamps.inc();
                        }
                    }
                }
            }

            match backend {
                DecoderBackend::Native if fused => {
                    // The data arrangement process under test, fused
                    // flavor: the de-rate-matcher already wrote the
                    // interleaved clusters, so one mask/merge pass
                    // segregates them straight into a pooled per-block
                    // stream buffer — the layout the quad-in-zmm batch
                    // decoder reads in place. No multiplex copy, no
                    // shared staging buffer, no per-block clone.
                    let t0 = Instant::now();
                    let mut streams = hot.acquire_streams(k, m);
                    let tf = m.map(|_| Instant::now());
                    fused_ingest_into(
                        best_fused(),
                        &hot.inter,
                        k,
                        &mut streams.sys,
                        &mut streams.p1,
                        &mut streams.p2,
                    );
                    if let (Some(m), Some(tf)) = (m, tf) {
                        m.record_arrange_fused(tf.elapsed().as_nanos() as u64);
                        m.fused_ingest_blocks.inc();
                    }
                    nanos.arrangement += t0.elapsed().as_nanos() as u64;

                    if batching {
                        // Stage this block for the grouped quad/pair
                        // decode after the loop — the pooled buffer
                        // rides inside the task, zero-copy.
                        batch_inputs.push(TurboLlrs { k, streams, tails });
                        continue;
                    }

                    let t0 = Instant::now();
                    let di = hot.native_index(k, cfg.decoder_iterations);
                    let crc = (blocks.len() > 1).then_some(&CRC24B);
                    let (iters, crc_ok) = timed(m, Stage::Decode, || {
                        hot.natives[di].decode_streams_capped_into(
                            &streams.sys,
                            &streams.p1,
                            &streams.p2,
                            &tails,
                            iter_cap,
                            crc,
                            &mut hot.scratch,
                            &mut hot.bits_pool[i],
                        )
                    });
                    iterations += iters;
                    nanos.decode += t0.elapsed().as_nanos() as u64;
                    if hot.llr_pool.len() < LLR_POOL_CAP {
                        hot.llr_pool.push(streams);
                    }
                    if crc_ok == Some(false) {
                        failed_blocks += 1;
                    }
                }
                DecoderBackend::Native => {
                    // The data arrangement process under test, unfused
                    // native flavor (kept for A/B against the fused
                    // ingest): multiplex the streams into the triples
                    // the de-rate-matcher hands the decoder (Fig 8a),
                    // then segregate them with the best real-intrinsics
                    // APCM kernel the host supports.
                    let t0 = Instant::now();
                    if batching {
                        // Segregate straight into a pooled buffer and
                        // stage it — no per-block clone here either.
                        let mut streams = hot.acquire_streams(k, m);
                        timed(m, Stage::Arrange, || {
                            hot.inter.resize(3 * k, 0);
                            for j in 0..k {
                                hot.inter[3 * j] = hot.dllr[0][j];
                                hot.inter[3 * j + 1] = hot.dllr[1][j];
                                hot.inter[3 * j + 2] = hot.dllr[2][j];
                            }
                            vran_arrange::native::deinterleave_into(
                                vran_arrange::native::best_apcm(),
                                &hot.inter,
                                k,
                                &mut streams,
                            );
                        });
                        nanos.arrangement += t0.elapsed().as_nanos() as u64;
                        batch_inputs.push(TurboLlrs { k, streams, tails });
                        continue;
                    }
                    timed(m, Stage::Arrange, || {
                        hot.inter.resize(3 * k, 0);
                        for j in 0..k {
                            hot.inter[3 * j] = hot.dllr[0][j];
                            hot.inter[3 * j + 1] = hot.dllr[1][j];
                            hot.inter[3 * j + 2] = hot.dllr[2][j];
                        }
                        hot.arranged.sys.resize(k, 0);
                        hot.arranged.p1.resize(k, 0);
                        hot.arranged.p2.resize(k, 0);
                        vran_arrange::native::deinterleave_into(
                            vran_arrange::native::best_apcm(),
                            &hot.inter,
                            k,
                            &mut hot.arranged,
                        );
                    });
                    nanos.arrangement += t0.elapsed().as_nanos() as u64;

                    let t0 = Instant::now();
                    let di = hot.native_index(k, cfg.decoder_iterations);
                    let crc = (blocks.len() > 1).then_some(&CRC24B);
                    let (iters, crc_ok) = timed(m, Stage::Decode, || {
                        hot.natives[di].decode_streams_capped_into(
                            &hot.arranged.sys,
                            &hot.arranged.p1,
                            &hot.arranged.p2,
                            &tails,
                            iter_cap,
                            crc,
                            &mut hot.scratch,
                            &mut hot.bits_pool[i],
                        )
                    });
                    iterations += iters;
                    nanos.decode += t0.elapsed().as_nanos() as u64;
                    if crc_ok == Some(false) {
                        failed_blocks += 1;
                    }
                }
                DecoderBackend::Scalar => {
                    let turbo_in = TurboLlrs::from_dstreams(&hot.dllr, k);

                    // The data arrangement process under test, VM
                    // flavor: the configured mechanism/width kernel
                    // segregates the interleaved triples.
                    let t0 = Instant::now();
                    let arranged = timed(m, Stage::Arrange, || {
                        let interleaved = turbo_in.to_interleaved();
                        let kern = ArrangeKernel::new(cfg.width, cfg.mechanism);
                        let (arranged, _) = kern.arrange(&interleaved, false);
                        kern.depermute(&arranged)
                    });
                    nanos.arrangement += t0.elapsed().as_nanos() as u64;

                    let t0 = Instant::now();
                    let dec_in = TurboLlrs {
                        k,
                        streams: arranged,
                        tails: turbo_in.tails,
                    };
                    let si = hot.scalar_index(k, cfg.decoder_iterations);
                    let crc = (blocks.len() > 1).then_some(&CRC24B);
                    let out = timed(m, Stage::Decode, || {
                        hot.scalars[si].1.decode_capped(&dec_in, iter_cap, crc)
                    });
                    iterations += out.iterations_run;
                    nanos.decode += t0.elapsed().as_nanos() as u64;
                    if out.crc_ok == Some(false) {
                        failed_blocks += 1;
                    }
                    hot.bits_pool[i] = out.bits;
                }
            }
        }

        if stage && batching {
            // One deadline gate before staging, mirroring the serial
            // batch path's single pre-decode gate. The clamped cap
            // rides into the pool so the launch honours it.
            let mut iter_cap = cfg.decoder_iterations;
            if let Some(budget) = cfg.deadline_ns {
                let elapsed = start.elapsed().as_nanos() as u64;
                if elapsed >= budget {
                    return Err(PipelineError::DeadlineExceeded {
                        budget_ns: budget,
                        elapsed_ns: elapsed,
                    });
                }
                if elapsed.saturating_mul(2) >= budget {
                    iter_cap = (cfg.decoder_iterations / 2).max(1);
                    if let Some(m) = m {
                        m.deadline_clamps.inc();
                    }
                }
            }
            if let Some(m) = m {
                m.record_scratch(
                    hot.scratch.allocations() - scratch_allocs0,
                    hot.scratch.reuses() - scratch_reuses0,
                );
            }
            let frame = mutated.unwrap_or_else(|| packet.frame.clone());
            return Ok(Phase::Staged(Box::new(PreparedUplink {
                start,
                fault,
                frame,
                tb_bits: tb.len(),
                seg,
                coded_bits: pos,
                nanos,
                iter_cap,
                tasks: batch_inputs,
            })));
        }

        if batching && !batch_inputs.is_empty() {
            // One deadline gate for the whole batched decode phase.
            let mut iter_cap = cfg.decoder_iterations;
            if let Some(budget) = cfg.deadline_ns {
                let elapsed = start.elapsed().as_nanos() as u64;
                if elapsed >= budget {
                    return Err(PipelineError::DeadlineExceeded {
                        budget_ns: budget,
                        elapsed_ns: elapsed,
                    });
                }
                if elapsed.saturating_mul(2) >= budget {
                    iter_cap = (cfg.decoder_iterations / 2).max(1);
                    if let Some(m) = m {
                        m.deadline_clamps.inc();
                    }
                }
            }
            let t0 = Instant::now();
            timed(m, Stage::Decode, || {
                // Decode runs of equal-K blocks in quads, then pairs,
                // then a single leftover — the batch decoder itself
                // degrades quad→pair→single below AVX-512BW, so every
                // grouping is bit-exact with serial native decodes.
                let mut idx = 0;
                while idx < batch_inputs.len() {
                    let k = batch_inputs[idx].k;
                    let mut end = idx + 1;
                    while end < batch_inputs.len() && batch_inputs[end].k == k {
                        end += 1;
                    }
                    let bi = hot.batch_index(k, iter_cap);
                    let mut j = idx;
                    while j + QUAD <= end {
                        // Staged entry point: the kernels read the
                        // pooled task buffers in place (no internal
                        // re-interleave copy) and write bits into the
                        // reused bit pool.
                        let inputs: [BlockLlrs<'_>; QUAD] =
                            core::array::from_fn(|g| BlockLlrs::from_turbo(&batch_inputs[j + g]));
                        let bits: &mut [Vec<u8>; QUAD] = (&mut hot.bits_pool[j..j + QUAD])
                            .try_into()
                            .expect("quad run");
                        let iters = hot.batches[bi].1.decode_quad_staged_into(
                            inputs,
                            &mut hot.batch_scratch,
                            bits,
                        );
                        iterations += QUAD * iters;
                        j += QUAD;
                    }
                    while j + BATCH <= end {
                        let inputs: [BlockLlrs<'_>; BATCH] =
                            core::array::from_fn(|g| BlockLlrs::from_turbo(&batch_inputs[j + g]));
                        let bits: &mut [Vec<u8>; BATCH] = (&mut hot.bits_pool[j..j + BATCH])
                            .try_into()
                            .expect("pair run");
                        let iters = hot.batches[bi].1.decode_pair_staged_into(
                            inputs,
                            &mut hot.batch_scratch,
                            bits,
                        );
                        iterations += BATCH * iters;
                        j += BATCH;
                    }
                    if j < end {
                        // Single leftover: same fixed-iteration,
                        // no-early-stop semantics as the batch members.
                        let input = &batch_inputs[j];
                        let di = hot.native_index(k, cfg.decoder_iterations);
                        let (iters, _) = hot.natives[di].decode_streams_capped_into(
                            &input.streams.sys,
                            &input.streams.p1,
                            &input.streams.p2,
                            &input.tails,
                            iter_cap,
                            None,
                            &mut hot.scratch,
                            &mut hot.bits_pool[j],
                        );
                        iterations += iters;
                    }
                    idx = end;
                }
            });
            // The batch kernels have no in-loop CRC early stop; check
            // each block afterwards so failures classify exactly like
            // the serial path's.
            if blocks.len() > 1 {
                let crc_imp = if cfg.frontend_simd {
                    best_crc()
                } else {
                    CrcImpl::BitSerial
                };
                for bits in hot.bits_pool[..blocks.len()].iter() {
                    if CRC24B.check_with(crc_imp, bits).is_none() {
                        failed_blocks += 1;
                    }
                }
            }
            nanos.decode += t0.elapsed().as_nanos() as u64;
            // Decode is done reading the pooled task buffers — return
            // them to the free list for the next packet's ingest.
            for t in batch_inputs.drain(..) {
                if hot.llr_pool.len() < LLR_POOL_CAP {
                    hot.llr_pool.push(t.streams);
                }
            }
        }

        if let Some(m) = m {
            m.record_scratch(
                hot.scratch.allocations() - scratch_allocs0,
                hot.scratch.reuses() - scratch_reuses0,
            );
        }

        self.finish(
            m,
            fault,
            frame,
            &seg,
            &hot.bits_pool[..blocks.len()],
            failed_blocks,
            tb.len(),
            pos,
            iterations,
            nanos,
        )
        .map(Phase::Complete)
    }

    /// Reassemble, de-encapsulate & verify: the tail shared by the
    /// inline path ([`Self::process_inner`]) and out-of-order batch
    /// completion ([`Self::complete`]). Classification is identical in
    /// both — the stage graph changes *when* decode runs, never what a
    /// packet's outcome is.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        m: Option<&PipelineMetrics>,
        fault: FaultKind,
        frame: &[u8],
        seg: &Segmentation,
        decoded: &[Vec<u8>],
        failed_blocks: usize,
        tb_bits: usize,
        coded_bits: usize,
        iterations: usize,
        nanos: StageNanos,
    ) -> Result<PacketResult, PipelineError> {
        let presented: &[Vec<u8>] = if fault == FaultKind::CodeBlockCountLie {
            // Hand desegmentation a block count that contradicts the
            // plan — must classify, not panic or mis-assemble.
            &decoded[..decoded.len() - 1]
        } else {
            decoded
        };
        let rx_tb = timed(m, Stage::Segment, || seg.try_desegment(presented))?;

        let failure = DecodeFailure {
            tb_bits,
            code_blocks: decoded.len(),
            failed_blocks,
            decoder_iterations: iterations,
        };
        if failed_blocks > 0 {
            return Err(PipelineError::DecoderDiverged(failure));
        }
        let rx_tb = match rx_tb {
            Some(t) => t,
            None => return Err(PipelineError::CrcMismatch(failure)),
        };
        let payload = match timed(m, Stage::Crc, || {
            if self.cfg.frontend_simd {
                let t = Instant::now();
                let p = CRC24A.check_with(best_crc(), &rx_tb);
                if let Some(m) = m {
                    m.record_frontend_crc(t.elapsed().as_nanos() as u64);
                }
                p
            } else {
                CRC24A.check_with(CrcImpl::BitSerial, &rx_tb)
            }
        }) {
            Some(p) => p,
            None => return Err(PipelineError::CrcMismatch(failure)),
        };
        let delivered = crate::l2::BearerRx::default()
            .decapsulate(&pack_msb(payload))
            .map(|sdu| sdu.as_slice() == frame)
            .unwrap_or(false);
        if !delivered {
            return Err(PipelineError::CrcMismatch(failure));
        }

        Ok(PacketResult {
            tb_bits,
            code_blocks: decoded.len(),
            coded_bits,
            decoder_iterations: iterations,
            nanos,
        })
    }

    /// Fading path: resource grids with scattered pilots, per-grid
    /// channel estimation and ZF equalization (frequency-domain model,
    /// matching the downlink pipeline).
    fn fading_pass(
        &self,
        symbols: &[vran_phy::modulation::Cplx],
    ) -> (Vec<vran_phy::modulation::Cplx>, f32) {
        use vran_phy::equalizer::{Equalizer, FadingChannel};
        const GRID: usize = 300;
        let eq = Equalizer::lte();
        let per_grid = GRID - eq.pilot_positions(GRID).len();
        let mut chan = FadingChannel::new(GRID, self.cfg.snr_db, 3, self.cfg.seed);
        let mut out = Vec::with_capacity(symbols.len());
        for chunk in symbols.chunks(per_grid) {
            let mut d = chunk.to_vec();
            d.resize(per_grid, vran_phy::modulation::Cplx::default());
            let (grid, _) = eq.insert_pilots(&d, GRID);
            let rx = chan.apply(&grid);
            let h = eq.estimate(&rx);
            let (eq_syms, _w) = eq.equalize(&rx, &h);
            out.extend_from_slice(&eq_syms[..chunk.len().min(eq_syms.len())]);
        }
        out.truncate(symbols.len());
        (out, 1.0)
    }

    /// Interleaved LLR volume (triples) the arrangement must process
    /// for a packet of `wire_len` bytes — the work-size input to the
    /// `vran-uarch` latency model.
    pub fn arrangement_triples(wire_len: usize) -> usize {
        let b = (wire_len + crate::l2::L2_OVERHEAD) * 8 + CRC24A.width();
        let seg = Segmentation::plan(b);
        (0..seg.c).map(|i| seg.k_of(i)).sum()
    }
}

/// LLR type re-export for downstream convenience.
pub type SoftValue = Llr;

/// Convenience: an interleaved workload of `k` triples with
/// reproducible contents (for benches and experiments that don't need
/// a real channel).
pub fn synthetic_interleaved(k: usize, seed: u64) -> InterleavedLlrs {
    let mut s = seed | 1;
    let data: Vec<Llr> = (0..3 * k)
        .map(|_| {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            ((s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 48) as i16) >> 4
        })
        .collect();
    InterleavedLlrs { k, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject::FaultMix;
    use crate::packet::{PacketBuilder, Transport};
    use vran_arrange::ApcmVariant;

    fn run(cfg: PipelineConfig, size: usize) -> Result<PacketResult, PipelineError> {
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, size).unwrap();
        UplinkPipeline::new(cfg).process(&p)
    }

    /// Comparable outcome signature across Ok/Err results.
    fn signature(r: &Result<PacketResult, PipelineError>) -> (bool, usize, usize, usize) {
        match r {
            Ok(p) => (true, p.tb_bits, p.code_blocks, p.decoder_iterations),
            Err(e) => {
                let f = e.decode_failure().copied().unwrap_or_default();
                (false, f.tb_bits, f.code_blocks, f.decoder_iterations)
            }
        }
    }

    #[test]
    fn clean_channel_round_trips_small_packet() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let r = run(cfg, 64).expect("clean channel must decode");
        assert_eq!(r.code_blocks, 1);
        assert_eq!(r.tb_bits, (64 + crate::l2::L2_OVERHEAD) * 8 + 24);
    }

    #[test]
    fn full_mtu_packet_round_trips() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let r = run(cfg, 1500).expect("clean channel must decode");
        assert!(r.code_blocks >= 2, "1500 B TB must segment: {r:?}");
    }

    #[test]
    fn moderate_snr_still_decodes() {
        // QPSK at 8 dB with rate 1/2 turbo: comfortably decodable.
        let cfg = PipelineConfig {
            modulation: Modulation::Qpsk,
            snr_db: 8.0,
            ..Default::default()
        };
        run(cfg, 256).expect("QPSK at 8 dB must decode");
    }

    #[test]
    fn hopeless_snr_fails_cleanly() {
        let cfg = PipelineConfig {
            modulation: Modulation::Qam64,
            snr_db: -10.0,
            decoder_iterations: 2,
            ..Default::default()
        };
        let e = run(cfg, 256).expect_err("−10 dB 64-QAM must not decode");
        assert!(
            matches!(
                e.category(),
                ErrorCategory::CrcMismatch | ErrorCategory::DecoderDiverged
            ),
            "noise failure must classify as a decode-quality error: {e}"
        );
        let f = e
            .decode_failure()
            .expect("decode-stage error carries stats");
        assert!(f.decoder_iterations > 0, "the decoder did run");
    }

    #[test]
    fn all_mechanisms_and_widths_produce_identical_outcomes() {
        // The paper's functional-equivalence requirement: the
        // arrangement mechanism must not change WHAT is computed.
        let mut results = Vec::new();
        for width in RegWidth::ALL {
            for mech in [
                Mechanism::Baseline,
                Mechanism::Apcm(ApcmVariant::Shuffle),
                Mechanism::Apcm(ApcmVariant::MaskRotate),
            ] {
                let cfg = PipelineConfig {
                    width,
                    mechanism: mech,
                    backend: DecoderBackend::Scalar,
                    snr_db: 12.0,
                    ..Default::default()
                };
                let r = run(cfg, 512);
                results.push((width, mech.name(), signature(&r)));
            }
        }
        let first = results[0].2;
        for (w, m, sig) in &results {
            assert_eq!(*sig, first, "{w} {m} diverged: {results:?}");
        }
        assert!(first.0, "the common outcome should be success at 12 dB");
        // ... and neither must the native fast path.
        let native = run(
            PipelineConfig {
                snr_db: 12.0,
                ..Default::default()
            },
            512,
        );
        assert_eq!(signature(&native), first);
    }

    #[test]
    fn native_and_scalar_backends_agree() {
        // The fast path's bit-exactness contract, observed end to end:
        // identical outcomes, iteration counts and coded-bit volumes
        // across packet sizes (1 and ≥2 code blocks) and channel
        // qualities, including a failing one.
        for (size, snr) in [(64usize, 30.0f32), (256, 8.0), (1500, 30.0), (256, 2.0)] {
            let results: Vec<Result<PacketResult, PipelineError>> =
                [DecoderBackend::Scalar, DecoderBackend::Native]
                    .into_iter()
                    .map(|backend| {
                        run(
                            PipelineConfig {
                                backend,
                                snr_db: snr,
                                ..Default::default()
                            },
                            size,
                        )
                    })
                    .collect();
            let (s, n) = (&results[0], &results[1]);
            assert_eq!(signature(s), signature(n), "{size} B at {snr} dB diverged");
            if let (Ok(s), Ok(n)) = (s, n) {
                assert_eq!(s.coded_bits, n.coded_bits, "{size} B at {snr} dB");
            }
        }
    }

    #[test]
    fn batch_decode_round_trips_and_matches_serial_bits() {
        // The opt-in batched decode path (quad-in-zmm where the host
        // has AVX-512BW, pair/single otherwise) must recover the exact
        // same transport blocks as the serial native path. Iteration
        // counts differ by design — batch decode runs a fixed schedule
        // with no CRC early stop — so only bit-level outcomes and
        // volumes are compared.
        for size in [64usize, 512, 1500] {
            let serial = run(
                PipelineConfig {
                    snr_db: 30.0,
                    ..Default::default()
                },
                size,
            )
            .expect("serial native path must decode a clean channel");
            let batched = run(
                PipelineConfig {
                    snr_db: 30.0,
                    batch_decode: true,
                    ..Default::default()
                },
                size,
            )
            .expect("batched native path must decode a clean channel");
            assert_eq!(serial.tb_bits, batched.tb_bits, "{size} B");
            assert_eq!(serial.code_blocks, batched.code_blocks, "{size} B");
            assert_eq!(serial.coded_bits, batched.coded_bits, "{size} B");
            // Fixed schedule: every block runs the full iteration cap.
            let cfg = PipelineConfig::default();
            assert_eq!(
                batched.decoder_iterations,
                batched.code_blocks * cfg.decoder_iterations,
                "{size} B: batch decode runs the full iteration budget"
            );
        }
    }

    #[test]
    fn packed_and_scalar_encoder_backends_agree() {
        // The transmit fast path's bit-exactness contract, observed end
        // to end: identical outcomes, iteration counts and coded-bit
        // volumes — the channel sees the exact same bits, so even the
        // noise realization is shared.
        for (size, snr) in [(64usize, 30.0f32), (512, 8.0), (1500, 30.0)] {
            let results: Vec<Result<PacketResult, PipelineError>> =
                [EncoderBackend::Scalar, EncoderBackend::Packed]
                    .into_iter()
                    .map(|encoder_backend| {
                        run(
                            PipelineConfig {
                                encoder_backend,
                                modulation: Modulation::Qpsk,
                                snr_db: snr,
                                ..Default::default()
                            },
                            size,
                        )
                    })
                    .collect();
            let (s, p) = (&results[0], &results[1]);
            assert_eq!(signature(s), signature(p), "{size} B at {snr} dB diverged");
            if let (Ok(s), Ok(p)) = (s, p) {
                assert_eq!(s.coded_bits, p.coded_bits, "{size} B at {snr} dB");
            }
        }
    }

    #[test]
    fn packed_encoder_hot_loop_reuses_scratch() {
        // Second identical packet must not grow the encode scratch.
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let pipe = UplinkPipeline::new(cfg);
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 1500).unwrap();
        assert!(pipe.process(&p).is_ok());
        let allocs_warm = pipe.hot.borrow().enc_scratch.allocations();
        assert!(allocs_warm > 0, "first packet must warm the scratch up");
        assert!(pipe.process(&p).is_ok());
        let hot = pipe.hot.borrow();
        assert_eq!(hot.enc_scratch.allocations(), allocs_warm);
        assert!(hot.enc_scratch.reuses() > 0);
    }

    #[test]
    fn hot_loop_allocations_stop_after_warmup() {
        // The zero-allocation claim for the native per-code-block
        // loop: the first packet may grow the scratch buffers; a
        // second identical packet must be served entirely from
        // retained capacity.
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 1500).unwrap();
        assert!(pipe.process(&p).is_ok());
        let allocs_warm = metrics.decode_scratch_allocs.get();
        assert!(allocs_warm > 0, "first packet must warm the scratch up");
        assert!(pipe.process(&p).is_ok());
        assert_eq!(
            metrics.decode_scratch_allocs.get(),
            allocs_warm,
            "warm packet allocated in the hot decode loop"
        );
        assert!(
            metrics.decode_scratch_reuses.get() > 0,
            "warm packet must reuse retained scratch capacity"
        );
    }

    #[test]
    fn fused_ingest_matches_unfused_chain() {
        // The fused mask/merge ingest replaces de-rate-match copy →
        // multiplex → APCM de-interleave with one pass; outcomes
        // (including iteration counts) must be identical, serial and
        // batched, mono- and multi-block.
        for batch in [false, true] {
            for size in [64, 300, 900, 1400] {
                let fused = run(
                    PipelineConfig {
                        batch_decode: batch,
                        snr_db: 12.0,
                        ..Default::default()
                    },
                    size,
                );
                let unfused = run(
                    PipelineConfig {
                        batch_decode: batch,
                        fused_ingest: false,
                        snr_db: 12.0,
                        ..Default::default()
                    },
                    size,
                );
                assert_eq!(
                    signature(&fused),
                    signature(&unfused),
                    "fused vs unfused at size {size}, batch {batch}"
                );
            }
        }
    }

    #[test]
    fn fused_batching_reaches_zero_steady_state_allocation() {
        // The per-block `SoftStreams` clones are gone: after warm-up,
        // staging buffers come off the free list (capacity retained)
        // and no steady-state allocation remains.
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            batch_decode: true,
            snr_db: 30.0,
            ..Default::default()
        };
        let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        for _ in 0..2 {
            let p = b.build(Transport::Udp, 1400).unwrap();
            assert!(pipe.process(&p).is_ok());
        }
        let allocs_warm = metrics.staging_allocs.get();
        let reallocs_warm = metrics.staging_reallocs.get();
        assert!(allocs_warm > 0, "warm-up must populate the free list");
        for _ in 0..4 {
            let p = b.build(Transport::Udp, 1400).unwrap();
            assert!(pipe.process(&p).is_ok());
        }
        assert_eq!(
            metrics.staging_allocs.get(),
            allocs_warm,
            "steady state allocated a fresh stream buffer"
        );
        assert_eq!(
            metrics.staging_reallocs.get(),
            reallocs_warm,
            "steady state grew a recycled stream buffer"
        );
        assert!(
            metrics.staging_reuses.get() > 0,
            "steady state must serve staging from the free list"
        );
        assert!(metrics.fused_ingest_blocks.get() > 0);
        assert!(
            metrics.arrange_fused().count() > 0,
            "fused ingest must record its own arrangement histogram"
        );
    }

    #[test]
    fn staging_pool_survives_k_changes_without_fresh_allocation() {
        // Alternating packet sizes change K per packet; recycled
        // buffers resize in place. A growth shows up as a
        // staging_realloc (not a fresh alloc), and once the pool has
        // seen the largest K, even those stop.
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            batch_decode: true,
            snr_db: 30.0,
            ..Default::default()
        };
        let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        let sizes = [64usize, 900, 300, 1400];
        for &s in sizes.iter().cycle().take(8) {
            let p = b.build(Transport::Udp, s).unwrap();
            assert!(pipe.process(&p).is_ok());
        }
        let allocs_warm = metrics.staging_allocs.get();
        let reallocs_warm = metrics.staging_reallocs.get();
        for &s in sizes.iter().cycle().take(8) {
            let p = b.build(Transport::Udp, s).unwrap();
            assert!(pipe.process(&p).is_ok());
        }
        assert_eq!(metrics.staging_allocs.get(), allocs_warm);
        assert_eq!(
            metrics.staging_reallocs.get(),
            reallocs_warm,
            "pool capacity must cover every K after one full cycle"
        );
    }

    #[test]
    fn degraded_pipeline_counts_fused_fallbacks() {
        // When the ladder demotes Native → Scalar, requested fused
        // ingest cannot run; the fallback counter says so.
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            modulation: Modulation::Qam64,
            snr_db: -10.0,
            decoder_iterations: 2,
            ..Default::default()
        };
        let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        for _ in 0..DEGRADE_AFTER + 2 {
            let p = b.build(Transport::Udp, 128).unwrap();
            let _ = pipe.process(&p);
        }
        assert!(pipe.is_degraded(), "hopeless SNR must degrade the ladder");
        assert!(
            metrics.fused_ingest_fallbacks.get() > 0,
            "degraded blocks must count as fused-ingest fallbacks"
        );
    }

    #[test]
    fn arrangement_volume_model_matches_pipeline() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1, 2);
        let p = b.build(Transport::Udp, 300).unwrap();
        let r = UplinkPipeline::new(cfg).process(&p).expect("clean channel");
        let expect = UplinkPipeline::arrangement_triples(300);
        // tb_bits + per-block CRCs + filler = sum of K
        let seg = Segmentation::plan(r.tb_bits);
        let sum_k: usize = (0..seg.c).map(|i| seg.k_of(i)).sum();
        assert_eq!(expect, sum_k);
    }

    #[test]
    fn stage_times_are_populated() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let r = run(cfg, 256).unwrap();
        assert!(r.nanos.encode > 0);
        assert!(r.nanos.transport > 0);
        assert!(r.nanos.arrangement > 0);
        assert!(r.nanos.decode > 0);
        assert_eq!(
            r.nanos.total(),
            r.nanos.encode
                + r.nanos.transport
                + r.nanos.demap
                + r.nanos.arrangement
                + r.nanos.decode
        );
    }

    #[test]
    fn fading_uplink_closes_the_loop() {
        let cfg = PipelineConfig {
            fading: true,
            modulation: Modulation::Qpsk,
            snr_db: 22.0,
            decoder_iterations: 8,
            ..Default::default()
        };
        let r = run(cfg, 256);
        assert!(r.is_ok(), "equalized fading uplink must decode: {r:?}");
    }

    #[test]
    fn fading_threshold_is_no_better_than_awgn() {
        // Find the lowest SNR (1 dB grid) at which each channel first
        // decodes; frequency-selective fading can only need more.
        let threshold = |fading: bool| -> i32 {
            for snr in 4..=20 {
                let cfg = PipelineConfig {
                    fading,
                    modulation: Modulation::Qam16,
                    snr_db: snr as f32,
                    decoder_iterations: 6,
                    ..Default::default()
                };
                if run(cfg, 256).is_ok() {
                    return snr;
                }
            }
            99
        };
        let awgn = threshold(false);
        let fade = threshold(true);
        assert!(awgn < 99, "AWGN must decode somewhere below 20 dB");
        assert!(
            fade >= awgn,
            "fading threshold ({fade} dB) below AWGN ({awgn} dB)?"
        );
    }

    #[test]
    fn metrics_record_every_stage_for_one_packet() {
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 256).unwrap();
        let r = UplinkPipeline::with_metrics(cfg, metrics.clone())
            .process(&p)
            .expect("clean channel");
        for s in Stage::ALL {
            assert!(
                metrics.stage(s).count() > 0,
                "stage {} recorded nothing",
                s.name()
            );
        }
        assert_eq!(metrics.packets.get(), 1);
        assert_eq!(metrics.ok_packets.get(), 1);
        assert_eq!(metrics.code_blocks.get(), r.code_blocks as u64);
        assert_eq!(
            metrics.decoder_iterations.get(),
            r.decoder_iterations as u64
        );
    }

    #[test]
    fn disabled_metrics_leave_pipeline_behavior_unchanged() {
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(false));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 128).unwrap();
        let r = UplinkPipeline::with_metrics(cfg, metrics.clone()).process(&p);
        assert!(r.is_ok());
        assert_eq!(metrics.packets.get(), 0);
        assert_eq!(metrics.stage(Stage::Decode).count(), 0);
    }

    #[test]
    fn synthetic_interleaved_is_deterministic() {
        let a = synthetic_interleaved(96, 5);
        let b = synthetic_interleaved(96, 5);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_interleaved(96, 6));
        assert_eq!(a.data.len(), 288);
    }

    // ---- robustness: typed errors, faults, deadlines, degradation ----

    #[test]
    fn corrupted_ingress_frame_is_typed_not_panicking() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let pipe = UplinkPipeline::new(cfg);
        let mut b = PacketBuilder::new(1000, 2000);
        let mut p = b.build(Transport::Udp, 128).unwrap();
        p.frame[20] ^= 0xff; // deep inside the IPv4 header
        let e = pipe.process(&p).expect_err("corrupt header must reject");
        assert_eq!(e.category(), ErrorCategory::MalformedFrame);

        // Truncated below the minimum header stack, including empty.
        for keep in [0usize, 1, 13, 41] {
            let mut p = b.build(Transport::Udp, 128).unwrap();
            p.frame.truncate(keep);
            let e = pipe
                .process(&p)
                .expect_err("truncated frame must reject cleanly");
            assert_eq!(e.category(), ErrorCategory::MalformedFrame, "keep={keep}");
        }
    }

    #[test]
    fn injected_faults_classify_into_expected_categories() {
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 256).unwrap();
        let expect = [
            (FaultKind::CorruptFrame, vec![ErrorCategory::MalformedFrame]),
            (
                FaultKind::TruncateFrame,
                vec![ErrorCategory::MalformedFrame],
            ),
            (
                FaultKind::CodeBlockCountLie,
                vec![ErrorCategory::SegmentationOverflow],
            ),
        ];
        for (kind, categories) in expect {
            let cfg = PipelineConfig {
                snr_db: 30.0,
                ..Default::default()
            };
            let pipe =
                UplinkPipeline::with_faults(cfg, FaultInjector::with_mix(42, FaultMix::only(kind)));
            for _ in 0..10 {
                let e = pipe
                    .process(&p)
                    .expect_err("every packet carries this fault");
                assert!(
                    categories.contains(&e.category()),
                    "{}: got {e}",
                    kind.name()
                );
            }
        }
        // LLR faults land in a decode-quality category (or, rarely,
        // the decoder still pulls the block through).
        for kind in [FaultKind::FlipLlrSigns, FaultKind::SaturateLlrs] {
            let cfg = PipelineConfig {
                snr_db: 30.0,
                ..Default::default()
            };
            let pipe =
                UplinkPipeline::with_faults(cfg, FaultInjector::with_mix(42, FaultMix::only(kind)));
            for _ in 0..10 {
                if let Err(e) = pipe.process(&p) {
                    assert!(
                        matches!(
                            e.category(),
                            ErrorCategory::CrcMismatch | ErrorCategory::DecoderDiverged
                        ),
                        "{}: got {e}",
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn exhausted_deadline_aborts_with_budget_accounting() {
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            deadline_ns: Some(1), // gone before the first decode
            ..Default::default()
        };
        let pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 128).unwrap();
        let e = pipe.process(&p).expect_err("1 ns budget cannot hold");
        match e {
            PipelineError::DeadlineExceeded {
                budget_ns,
                elapsed_ns,
            } => {
                assert_eq!(budget_ns, 1);
                assert!(elapsed_ns >= budget_ns);
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        assert_eq!(metrics.error_count(ErrorCategory::DeadlineExceeded), 1);
        assert_eq!(metrics.packets.get(), 1);
        assert_eq!(metrics.ok_packets.get(), 0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let base = run(
            PipelineConfig {
                snr_db: 12.0,
                ..Default::default()
            },
            512,
        );
        let budgeted = run(
            PipelineConfig {
                snr_db: 12.0,
                deadline_ns: Some(u64::MAX),
                ..Default::default()
            },
            512,
        );
        assert_eq!(signature(&base), signature(&budgeted));
    }

    #[test]
    fn degradation_ladder_swaps_to_scalar_and_restores() {
        let metrics = std::sync::Arc::new(crate::metrics::PipelineMetrics::new(true));
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default() // Native backend
        };
        let mut pipe = UplinkPipeline::with_metrics(cfg, metrics.clone());
        pipe.set_fault_injector(FaultInjector::with_mix(
            11,
            FaultMix::only(FaultKind::FlipLlrSigns),
        ));
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 256).unwrap();

        // Hammer with LLR sign-flips until the ladder trips.
        let mut tries = 0;
        while !pipe.is_degraded() {
            assert!(tries < 100, "ladder never tripped in {tries} packets");
            let _ = pipe.process(&p);
            tries += 1;
        }
        assert!(tries >= DEGRADE_AFTER as usize, "tripped early: {tries}");
        assert_eq!(metrics.backend_degradations.get(), 1);
        assert_eq!(metrics.backend_restorations.get(), 0);

        // Degraded pipeline still decodes clean traffic (bit-exact
        // scalar path), and restores after enough successes.
        pipe.set_fault_injector(FaultInjector::with_mix(1, FaultMix::only(FaultKind::Clean)));
        for i in 0..RESTORE_AFTER {
            assert!(
                pipe.process(&p).is_ok(),
                "clean packet {i} failed while degraded"
            );
        }
        assert!(
            !pipe.is_degraded(),
            "ladder must restore after {RESTORE_AFTER} successes"
        );
        assert_eq!(metrics.backend_restorations.get(), 1);
    }

    #[test]
    fn fault_decisions_are_deterministic_per_seed() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let mut b = PacketBuilder::new(1000, 2000);
        let p = b.build(Transport::Udp, 128).unwrap();
        let outcomes = |seed: u64| -> Vec<Option<ErrorCategory>> {
            let pipe = UplinkPipeline::with_faults(cfg, FaultInjector::new(seed));
            (0..40)
                .map(|_| pipe.process(&p).err().map(|e| e.category()))
                .collect()
        };
        assert_eq!(outcomes(3), outcomes(3));
        assert_ne!(outcomes(3), outcomes(4), "different seed, different faults");
    }
}
