//! Out-of-order stage-graph runtime with cross-packet batch formation.
//!
//! The quad-in-zmm decoder (`vran-phy`'s [`NativeBatchTurboDecoder`])
//! only pays off when all four lanes hold a code block of the *same* K
//! — and a single transport block rarely carries four. Under mixed-K
//! traffic the per-packet serial model leaves the zmm lanes mostly
//! idle. This module restructures the dataflow instead of widening the
//! kernels: uplink work decomposes into stage tasks, and **decode tasks
//! from different packets** are pooled by `(K, iteration cap)`, then
//! launched as quad-in-zmm / pair-in-ymm batches the moment lanes fill
//! — or earlier, when a member packet's deadline (or an age bound)
//! nears.
//!
//! ```text
//!          admit(ue, pkt)                    pools (one per K, cap)
//! ┌─────────────────────────────┐    ┌───────┐
//! │ demod → de-rate-match →     │ K₁ │ ▓▓▓░  │── lanes full ──┐
//! │ arrange  (UplinkPipeline::  │───▶├───────┤                ▼
//! │ prepare, per packet)        │ K₂ │ ▓░░░  │── deadline ─▶ quad /
//! └─────────────────────────────┘    └───────┘    flush      pair /
//!        │ staged tasks                                      single
//!        ▼                                                     │
//! ┌──────────────┐   all blocks decoded    ┌────────────────┐  │
//! │ ROB slots +  │◀────────────────────────│ scatter bits,  │◀─┘
//! │ free list    │                         │ iters, decode  │
//! └──────────────┘                         │ ns to slots    │
//!        │ retire (out of order)           └────────────────┘
//!        ▼
//! per-UE reorder (seq) → in-order delivery, CRC check, L2 verify
//! ```
//!
//! # What is preserved
//!
//! * **Bit-exact outcomes.** The batch kernels run the same saturating
//!   i16 ops in the same order as the serial native decoder at a fixed
//!   iteration count, for every quad/pair/single grouping — so *when*
//!   a block decodes and *who* it shares a register with cannot change
//!   its bits. Completion runs the exact serial tail
//!   ([`UplinkPipeline::complete`]): per-block CRC24B, desegment,
//!   CRC24A, L2 delivery check.
//! * **Error taxonomy and the degradation ladder.** `prepare` fails
//!   with the same typed [`PipelineError`]s at the same points; the
//!   Scalar backend (configured or ladder-degraded) completes serially
//!   inside `prepare` and retires through the same reorder stage. The
//!   ladder settles at completion, exactly as in `process`.
//! * **In-order per-UE delivery.** Packets retire from the ROB out of
//!   order, but each UE's results are resequenced by admission number
//!   before [`StageGraph::pop_completed`] surfaces them.
//!
//! # ROB / free-list idiom
//!
//! In-flight packets live in a fixed array of slots linked through
//! `next_free` indices — allocation is "pop the free head", release is
//! "push onto the free head", no heap traffic in steady state. A slot
//! retires when its last staged block decodes. If admission ever finds
//! the free list empty, every pool is flushed (reason `Drain`), which
//! completes all in-flight packets and refills the list.
//!
//! # Flush policy
//!
//! * `LanesFull` — a pool reached four tasks: launch a quad now.
//! * `Deadline` — the pool's oldest task aged past
//!   [`StageGraphConfig::flush_age`] admissions, or its packet spent
//!   3/4 of its [`PipelineConfig::deadline_ns`] budget: launch what's
//!   there (pair + single) rather than blow the budget waiting for a
//!   fourth.
//! * `Drain` — end of run (or ROB pressure): flush everything.

use crate::error::PipelineError;
use crate::metrics::{Stage, StageGraphMetrics};
use crate::observe::{FlightRecorder, TraceEvent};
use crate::packet::Packet;
use crate::pipeline::{Admission, PacketResult, PipelineConfig, PreparedUplink, UplinkPipeline};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vran_phy::llr::TurboLlrs;
use vran_phy::turbo::native_batch::{BATCH, QUAD};
use vran_phy::turbo::{
    BatchScratch, BlockLlrs, DecodeScratch, NativeBatchTurboDecoder, NativeTurboDecoder,
};

/// Why a decode pool launched before (or at) lane width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// Four same-K tasks filled the zmm lanes — the happy path.
    LanesFull,
    /// A member task's packet deadline or age bound neared; partial
    /// launch (pair/single) beats a blown budget.
    Deadline,
    /// End-of-run drain or ROB pressure: no more admissions are coming
    /// to fill the lanes.
    Drain,
}

/// Stage-graph tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct StageGraphConfig {
    /// ROB capacity: maximum packets in flight (staged but not yet
    /// retired). The free list spans exactly this many slots.
    pub rob_slots: usize,
    /// Age bound, in admissions: a pool whose oldest task has waited
    /// this many `admit` calls is deadline-flushed. Under the mixed-K
    /// `paper_sweep` round-robin the same-K re-arrival distance is
    /// well under this, so the bound only fires on rare stragglers.
    pub flush_age: u64,
}

impl Default for StageGraphConfig {
    fn default() -> Self {
        Self {
            rob_slots: 64,
            flush_age: 64,
        }
    }
}

/// One in-flight packet: everything needed to finish it once its
/// blocks decode.
#[derive(Debug)]
struct InFlight {
    ue: u64,
    seq: u64,
    prep: PreparedUplink,
    /// Decoded bits, one buffer per code block, scattered in by
    /// launches as they complete.
    bits: Vec<Vec<u8>>,
    /// Blocks still waiting in some pool.
    remaining: usize,
    /// Decoder iterations accumulated across the packet's blocks.
    iterations: usize,
    /// Wall-clock decode share attributed by the launches it rode.
    decode_ns: u64,
}

/// A ROB slot: either a link in the free list or an in-flight packet.
#[derive(Debug)]
struct RobSlot {
    /// Next free slot index when this slot is free (`u32::MAX` ends
    /// the list); meaningless while occupied.
    next_free: u32,
    entry: Option<InFlight>,
}

const FREE_END: u32 = u32::MAX;

/// One staged decode task waiting in a pool.
#[derive(Debug)]
struct PoolTask {
    slot: u32,
    block: usize,
    task: TurboLlrs,
    /// Admission tick when staged (age-bound flush).
    staged_at: u64,
    /// Wall-clock point past which waiting risks the packet's budget
    /// (3/4 of `deadline_ns` from its start), when one is configured.
    flush_at: Option<Instant>,
}

/// Same-`(K, iter_cap)` decode pool with its cached batch decoder.
#[derive(Debug)]
struct Pool {
    k: usize,
    iter_cap: usize,
    tasks: Vec<PoolTask>,
    dec: NativeBatchTurboDecoder,
}

/// The out-of-order stage-graph runtime. One instance per worker
/// thread (single-threaded interior, like [`UplinkPipeline`] itself).
///
/// Drive it with [`Self::admit`] per packet, [`Self::drain`] at end of
/// stream, and [`Self::pop_completed`] to collect per-UE in-order
/// results.
#[derive(Debug)]
pub struct StageGraph {
    pipe: UplinkPipeline,
    cfg: StageGraphConfig,
    metrics: Option<Arc<StageGraphMetrics>>,
    /// Flight recorder receiving one [`TraceEvent`] per pool flush
    /// (also re-attached to replacement pipelines).
    recorder: Option<Arc<FlightRecorder>>,
    /// Monotone pool-launch ordinal stamped on flush trace events.
    batch_seq: u64,
    slots: Vec<RobSlot>,
    free_head: u32,
    /// In-flight packet count (occupied ROB slots).
    in_flight: usize,
    pools: Vec<Pool>,
    /// Cached serial decoders for single-leftover launches, keyed by K
    /// (same max-iteration construction as the pipeline's own cache).
    singles: Vec<NativeTurboDecoder>,
    scratch: DecodeScratch,
    /// Staged-batch-decoder working buffers, shared across pools and
    /// launches (capacity retained — the quad/pair kernels read the
    /// pooled task buffers in place, so this is the only decode-side
    /// staging left).
    batch_scratch: BatchScratch,
    /// Per-lane decoded-bit landing buffers, reused across launches;
    /// the scatter step copies each lane's `K` bytes into the owning
    /// ROB slot (bits are small — the zero-copy claim is the LLRs).
    lane_bits: [Vec<u8>; QUAD],
    /// Admission counter (the age clock).
    tick: u64,
    /// Per-UE: next sequence number to assign at admission.
    next_seq: HashMap<u64, u64>,
    /// Per-UE: next sequence number eligible for delivery.
    next_deliver: HashMap<u64, u64>,
    /// Retired results waiting for earlier same-UE packets.
    held: HashMap<u64, BTreeMap<u64, Result<PacketResult, PipelineError>>>,
    /// In-order delivery queue.
    completed: VecDeque<(u64, Result<PacketResult, PipelineError>)>,
}

impl StageGraph {
    /// New runtime around an existing pipeline (carries its config,
    /// metrics and fault injector).
    pub fn new(pipe: UplinkPipeline, cfg: StageGraphConfig) -> Self {
        let rob = cfg.rob_slots.max(1);
        let slots = (0..rob)
            .map(|i| RobSlot {
                next_free: if i + 1 < rob {
                    (i + 1) as u32
                } else {
                    FREE_END
                },
                entry: None,
            })
            .collect();
        Self {
            pipe,
            cfg,
            metrics: None,
            recorder: None,
            batch_seq: 0,
            slots,
            free_head: 0,
            in_flight: 0,
            pools: Vec::new(),
            singles: Vec::new(),
            scratch: DecodeScratch::default(),
            batch_scratch: BatchScratch::default(),
            lane_bits: Default::default(),
            tick: 0,
            next_seq: HashMap::new(),
            next_deliver: HashMap::new(),
            held: HashMap::new(),
            completed: VecDeque::new(),
        }
    }

    /// Convenience: build the pipeline from a config.
    pub fn with_config(pipe_cfg: PipelineConfig, cfg: StageGraphConfig) -> Self {
        Self::new(UplinkPipeline::new(pipe_cfg), cfg)
    }

    /// Attach a batch-formation metrics registry.
    pub fn set_metrics(&mut self, m: Arc<StageGraphMetrics>) {
        self.metrics = Some(m);
    }

    /// Attach a flight recorder: one [`TraceEvent`] per pool flush
    /// from the graph, plus per-packet events from the wrapped
    /// pipeline. Survives [`Self::replace_pipeline`].
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.pipe.set_recorder(recorder.clone());
        self.recorder = Some(recorder);
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &UplinkPipeline {
        &self.pipe
    }

    /// Swap in a fresh pipeline after an isolated worker panic,
    /// *keeping* the ROB, pools and per-UE sequence state — in-flight
    /// packets staged before the panic still retire, and delivery
    /// order is unbroken. (Prepare stages nothing before it returns,
    /// so a panicking packet leaves no orphaned tasks behind.)
    pub fn replace_pipeline(&mut self, mut pipe: UplinkPipeline) {
        if let Some(rec) = &self.recorder {
            pipe.set_recorder(rec.clone());
        }
        self.pipe = pipe;
    }

    /// Packets staged but not yet retired.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Admit one packet for UE `ue`. Runs the receive path up to the
    /// decode stage, pools the code blocks, and launches any batch
    /// whose lanes filled or whose deadline neared. Completed packets
    /// (this one or earlier ones its launches finished) become
    /// available via [`Self::pop_completed`].
    ///
    /// Panic-safe for worker isolation: a panic inside the pipeline
    /// (e.g. injected [`crate::faultinject::FaultKind::WorkerPanic`])
    /// unwinds out *before* a sequence number is consumed or anything
    /// is staged, so the graph stays consistent — swap in a fresh
    /// pipeline with [`Self::replace_pipeline`] and keep admitting.
    pub fn admit(&mut self, ue: u64, packet: &Packet) {
        self.tick += 1;
        self.pipe.set_trace_ue(ue);
        let admission = self.pipe.prepare(packet);
        let seq = {
            let s = self.next_seq.entry(ue).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        match admission {
            Admission::Ready(result) => {
                // Completed serially (Scalar backend, degraded ladder,
                // or a pre-decode failure) — but an earlier same-UE
                // packet may still be in flight, so it joins the
                // reorder stage like everyone else.
                self.retire(ue, seq, result);
            }
            Admission::Staged(mut prep) => {
                let slot = self.alloc_slot();
                let tasks = std::mem::take(&mut prep.tasks);
                let budget = self.pipe.config().deadline_ns;
                let flush_at = budget.map(|b| prep.start + Duration::from_nanos(b * 3 / 4));
                let iter_cap = prep.iter_cap();
                let n = tasks.len();
                self.slots[slot as usize].entry = Some(InFlight {
                    ue,
                    seq,
                    prep,
                    bits: vec![Vec::new(); n],
                    remaining: n,
                    iterations: 0,
                    decode_ns: 0,
                });
                self.in_flight += 1;
                for (block, task) in tasks.into_iter().enumerate() {
                    self.stage_task(slot, block, task, iter_cap, flush_at);
                }
            }
        }
        self.flush_aged();
    }

    /// Flush every pool (end of stream): remaining tasks launch as
    /// pairs and singles, and all in-flight packets retire.
    pub fn drain(&mut self) {
        for pi in 0..self.pools.len() {
            if !self.pools[pi].tasks.is_empty() {
                self.flush_pool(pi, FlushReason::Drain);
            }
        }
        debug_assert_eq!(self.in_flight, 0, "drain retires everything");
    }

    /// Next in-order completed packet: `(ue, result)`. Per-UE order is
    /// admission order; across UEs, retirement order.
    pub fn pop_completed(&mut self) -> Option<(u64, Result<PacketResult, PipelineError>)> {
        self.completed.pop_front()
    }

    // ---- internals ----

    /// Pop a free ROB slot, flushing all pools first if none is free
    /// (flushing retires every in-flight packet, so the list refills).
    fn alloc_slot(&mut self) -> u32 {
        if self.free_head == FREE_END {
            for pi in 0..self.pools.len() {
                if !self.pools[pi].tasks.is_empty() {
                    self.flush_pool(pi, FlushReason::Drain);
                }
            }
            debug_assert_ne!(self.free_head, FREE_END, "flush-all frees slots");
        }
        let slot = self.free_head;
        self.free_head = self.slots[slot as usize].next_free;
        slot
    }

    /// Push a retired slot back onto the free list.
    fn release_slot(&mut self, slot: u32) {
        self.slots[slot as usize].entry = None;
        self.slots[slot as usize].next_free = self.free_head;
        self.free_head = slot;
    }

    /// Stage one decode task into its `(K, iter_cap)` pool, launching
    /// a quad immediately when the lanes fill.
    fn stage_task(
        &mut self,
        slot: u32,
        block: usize,
        task: TurboLlrs,
        iter_cap: usize,
        flush_at: Option<Instant>,
    ) {
        let k = task.k;
        let pi = match self
            .pools
            .iter()
            .position(|p| p.k == k && p.iter_cap == iter_cap)
        {
            Some(i) => i,
            None => {
                self.pools.push(Pool {
                    k,
                    iter_cap,
                    tasks: Vec::with_capacity(QUAD),
                    dec: NativeBatchTurboDecoder::new(k, iter_cap),
                });
                self.pools.len() - 1
            }
        };
        self.pools[pi].tasks.push(PoolTask {
            slot,
            block,
            task,
            staged_at: self.tick,
            flush_at,
        });
        if self.pools[pi].tasks.len() >= QUAD {
            self.flush_pool(pi, FlushReason::LanesFull);
        }
    }

    /// Deadline-driven partial flush: launch any pool whose oldest
    /// task aged past the bound or whose packet spent 3/4 of its
    /// budget. Oldest-first order within a pool makes the front task
    /// the binding one.
    fn flush_aged(&mut self) {
        let now = self
            .pools
            .iter()
            .any(|p| p.tasks.first().is_some_and(|t| t.flush_at.is_some()))
            .then(Instant::now);
        for pi in 0..self.pools.len() {
            let due = match self.pools[pi].tasks.first() {
                Some(t) => {
                    self.tick.saturating_sub(t.staged_at) >= self.cfg.flush_age
                        || t.flush_at.zip(now).is_some_and(|(at, now)| now >= at)
                }
                None => false,
            };
            if due {
                self.flush_pool(pi, FlushReason::Deadline);
            }
        }
    }

    /// Launch everything in pool `pi`: quads while four remain, then a
    /// pair, then a single leftover. Scatters bits / iterations /
    /// decode-time shares to the owning ROB slots and retires any slot
    /// whose last block this launch decoded.
    fn flush_pool(&mut self, pi: usize, reason: FlushReason) {
        let pool = &mut self.pools[pi];
        if pool.tasks.is_empty() {
            return;
        }
        if let Some(m) = &self.metrics {
            m.record_flush(reason);
        }
        if let Some(rec) = &self.recorder {
            rec.record(TraceEvent::flush(
                self.batch_seq,
                pool.k,
                pool.tasks.len(),
                reason,
            ));
        }
        self.batch_seq += 1;
        let tasks = std::mem::take(&mut pool.tasks);
        let iter_cap = pool.iter_cap;
        let k = pool.k;
        let n = tasks.len();
        let mut j = 0;
        let mut total_decode_ns = 0u64;
        while j + QUAD <= n {
            // Staged launch: the quad kernel reads the pooled task
            // stream buffers in place — no per-launch re-staging copy —
            // and lands bits in the reused lane buffers.
            let t0 = Instant::now();
            let inputs: [BlockLlrs<'_>; QUAD] =
                std::array::from_fn(|g| BlockLlrs::from_turbo(&tasks[j + g].task));
            let iters = self.pools[pi].dec.decode_quad_staged_into(
                inputs,
                &mut self.batch_scratch,
                &mut self.lane_bits,
            );
            let ns = t0.elapsed().as_nanos() as u64;
            total_decode_ns += ns;
            if let Some(m) = &self.metrics {
                m.record_launch(QUAD);
            }
            self.scatter(&tasks[j..j + QUAD], iters, ns / QUAD as u64);
            j += QUAD;
        }
        while j + BATCH <= n {
            let t0 = Instant::now();
            let inputs: [BlockLlrs<'_>; BATCH] =
                std::array::from_fn(|g| BlockLlrs::from_turbo(&tasks[j + g].task));
            let bits: &mut [Vec<u8>; BATCH] = (&mut self.lane_bits[..BATCH])
                .try_into()
                .expect("pair lanes");
            let iters =
                self.pools[pi]
                    .dec
                    .decode_pair_staged_into(inputs, &mut self.batch_scratch, bits);
            let ns = t0.elapsed().as_nanos() as u64;
            total_decode_ns += ns;
            if let Some(m) = &self.metrics {
                m.record_launch(BATCH);
            }
            self.scatter(&tasks[j..j + BATCH], iters, ns / BATCH as u64);
            j += BATCH;
        }
        if j < n {
            // Single leftover: same fixed-iteration, no-early-stop
            // semantics as the batch members (bit-exact with them).
            let si = match self.singles.iter().position(|d| d.k() == k) {
                Some(i) => i,
                None => {
                    let max_iters = self.pipe.config().decoder_iterations;
                    self.singles.push(NativeTurboDecoder::new(k, max_iters));
                    self.singles.len() - 1
                }
            };
            let input = &tasks[j].task;
            let t0 = Instant::now();
            let (iters, _) = self.singles[si].decode_streams_capped_into(
                &input.streams.sys,
                &input.streams.p1,
                &input.streams.p2,
                &input.tails,
                iter_cap,
                None,
                &mut self.scratch,
                &mut self.lane_bits[0],
            );
            let ns = t0.elapsed().as_nanos() as u64;
            total_decode_ns += ns;
            if let Some(m) = &self.metrics {
                m.record_launch(1);
            }
            self.scatter(&tasks[j..j + 1], iters, ns);
        }
        if let Some(pm) = self.pipe.metrics().filter(|m| m.is_enabled()) {
            pm.record_stage(Stage::Decode, total_decode_ns);
        }

        // Retire slots whose last block this flush decoded, then hand
        // the task stream buffers back to the pipeline's free list so
        // the next admissions' ingest reuses their capacity.
        for t in &tasks {
            let done = match &self.slots[t.slot as usize].entry {
                Some(e) if e.remaining == 0 => {
                    self.slots[t.slot as usize].entry.take().expect("occupied")
                }
                _ => continue,
            };
            self.release_slot(t.slot);
            self.in_flight -= 1;
            self.pipe.set_trace_ue(done.ue);
            let result = self
                .pipe
                .complete(done.prep, &done.bits, done.iterations, done.decode_ns);
            self.retire(done.ue, done.seq, result);
        }
        for t in tasks {
            self.pipe.recycle_streams(t.task.streams);
        }
    }

    /// Copy each lane's decoded bits into the owning ROB slot and
    /// credit the launch's iterations and wall-clock share. `run`
    /// aligns with `lane_bits[..run.len()]`.
    fn scatter(&mut self, run: &[PoolTask], iters: usize, share_ns: u64) {
        for (lane, t) in run.iter().enumerate() {
            let entry = self.slots[t.slot as usize]
                .entry
                .as_mut()
                .expect("pool task points at an occupied slot");
            let dst = &mut entry.bits[t.block];
            dst.clear();
            dst.extend_from_slice(&self.lane_bits[lane]);
            entry.iterations += iters;
            entry.decode_ns += share_ns;
            entry.remaining -= 1;
        }
    }

    /// Feed one retired packet into the per-UE resequencer and move
    /// every now-deliverable result to the completion queue.
    fn retire(&mut self, ue: u64, seq: u64, result: Result<PacketResult, PipelineError>) {
        self.held.entry(ue).or_default().insert(seq, result);
        let next = self.next_deliver.entry(ue).or_insert(0);
        let pending = self.held.get_mut(&ue).expect("just inserted");
        while let Some(r) = pending.remove(next) {
            self.completed.push_back((ue, r));
            *next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketBuilder, Transport};
    use crate::pipeline::DecoderBackend;

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        }
    }

    /// Comparable outcome signature across Ok/Err results.
    fn signature(r: &Result<PacketResult, PipelineError>) -> (bool, usize, usize, usize) {
        match r {
            Ok(p) => (true, p.tb_bits, p.code_blocks, p.decoder_iterations),
            Err(e) => {
                let f = e.decode_failure().copied().unwrap_or_default();
                (false, f.tb_bits, f.code_blocks, f.decoder_iterations)
            }
        }
    }

    #[test]
    fn staged_results_match_serial_process() {
        let sizes = [64usize, 128, 300, 600, 900, 1200, 1400];
        let mut bs = PacketBuilder::new(1000, 2000);
        let mut bg = PacketBuilder::new(1000, 2000);
        // Batch semantics run a fixed iteration count (no CRC early
        // stop), so the iteration-for-iteration oracle is the serial
        // *batch* path, which existing pipeline tests pin bit-exact
        // against the plain serial path.
        let serial = UplinkPipeline::new(PipelineConfig {
            batch_decode: true,
            ..cfg()
        });
        let mut graph = StageGraph::with_config(cfg(), StageGraphConfig::default());
        let mut expect = Vec::new();
        for (i, &sz) in sizes.iter().cycle().take(40).enumerate() {
            let ps = bs.build(Transport::Udp, sz).unwrap();
            let pg = bg.build(Transport::Udp, sz).unwrap();
            assert_eq!(ps.frame, pg.frame, "builders in lockstep");
            expect.push(signature(&serial.process(&ps)));
            graph.admit((i % 5) as u64, &pg);
        }
        graph.drain();
        let mut got: Vec<(u64, (bool, usize, usize, usize))> = Vec::new();
        while let Some((ue, r)) = graph.pop_completed() {
            got.push((ue, signature(&r)));
        }
        assert_eq!(got.len(), expect.len());
        // Same multiset of outcome signatures; per-UE admission order.
        for ue in 0..5u64 {
            let per_ue: Vec<_> = got
                .iter()
                .filter(|(u, _)| *u == ue)
                .map(|(_, s)| *s)
                .collect();
            let want: Vec<_> = expect
                .iter()
                .enumerate()
                .filter(|(i, _)| (*i % 5) as u64 == ue)
                .map(|(_, s)| *s)
                .collect();
            assert_eq!(per_ue, want, "UE {ue} signatures in admission order");
        }
    }

    #[test]
    fn lanes_fill_under_uniform_k() {
        let m = Arc::new(StageGraphMetrics::default());
        let mut graph = StageGraph::with_config(cfg(), StageGraphConfig::default());
        graph.set_metrics(m.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        // 8 equal-size single-block packets → two full quads.
        for i in 0..8 {
            let p = b.build(Transport::Udp, 64).unwrap();
            graph.admit(i, &p);
        }
        graph.drain();
        assert_eq!(m.quad_blocks.get(), 8);
        assert_eq!(m.flush_lanes_full.get(), 2);
        assert_eq!(m.lane_occupancy(), 1.0);
        assert_eq!(graph.in_flight(), 0);
    }

    #[test]
    fn drain_flushes_partial_pools() {
        let m = Arc::new(StageGraphMetrics::default());
        let mut graph = StageGraph::with_config(cfg(), StageGraphConfig::default());
        graph.set_metrics(m.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        for i in 0..3 {
            let p = b.build(Transport::Udp, 64).unwrap();
            graph.admit(i, &p);
        }
        assert_eq!(graph.in_flight(), 3, "three staged, lanes not full");
        graph.drain();
        assert_eq!(m.flush_drain.get(), 1);
        assert_eq!(m.pair_blocks.get(), 2);
        assert_eq!(m.single_blocks.get(), 1);
        let mut n = 0;
        while let Some((_, r)) = graph.pop_completed() {
            assert!(r.is_ok());
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn age_bound_flushes_stragglers() {
        let m = Arc::new(StageGraphMetrics::default());
        let mut graph = StageGraph::with_config(
            cfg(),
            StageGraphConfig {
                flush_age: 4,
                ..Default::default()
            },
        );
        graph.set_metrics(m.clone());
        let mut b = PacketBuilder::new(1000, 2000);
        // One 64 B packet, then a stream of 600 B packets: the 64 B
        // pool can never fill its lanes and must age out.
        let p = b.build(Transport::Udp, 64).unwrap();
        graph.admit(0, &p);
        for i in 0..6 {
            let p = b.build(Transport::Udp, 600).unwrap();
            graph.admit(1 + i, &p);
        }
        assert!(m.flush_deadline.get() >= 1, "straggler aged out");
        graph.drain();
        let mut seen = 0;
        while graph.pop_completed().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 7);
    }

    #[test]
    fn scalar_backend_retires_through_reorder_stage() {
        let mut graph = StageGraph::with_config(
            PipelineConfig {
                backend: DecoderBackend::Scalar,
                snr_db: 30.0,
                ..Default::default()
            },
            StageGraphConfig::default(),
        );
        let mut b = PacketBuilder::new(1000, 2000);
        for _ in 0..4 {
            let p = b.build(Transport::Udp, 128).unwrap();
            graph.admit(7, &p);
        }
        graph.drain();
        let mut n = 0;
        while let Some((ue, r)) = graph.pop_completed() {
            assert_eq!(ue, 7);
            assert!(r.is_ok());
            n += 1;
        }
        assert_eq!(n, 4, "serial fallback still delivers every packet");
    }

    #[test]
    fn rob_pressure_flushes_instead_of_failing() {
        let mut graph = StageGraph::with_config(
            cfg(),
            StageGraphConfig {
                rob_slots: 2,
                flush_age: u64::MAX / 2,
            },
        );
        let mut b = PacketBuilder::new(1000, 2000);
        // Alternate sizes so no pool ever fills its lanes: ROB (2
        // slots) runs out and must flush-all to keep admitting.
        for i in 0..10 {
            let sz = if i % 2 == 0 { 64 } else { 600 };
            let p = b.build(Transport::Udp, sz).unwrap();
            graph.admit(i, &p);
        }
        graph.drain();
        let mut n = 0;
        while let Some((_, r)) = graph.pop_completed() {
            assert!(r.is_ok());
            n += 1;
        }
        assert_eq!(n, 10);
    }
}
