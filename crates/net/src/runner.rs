//! Threaded pipeline driver: packet source → SPSC ring → PHY worker →
//! SPSC ring → sink, mirroring the containerized eNB layout of the
//! paper's Figure 1 (each stage its own execution context, queues in
//! userspace).
//!
//! The multicore driver isolates worker panics: each packet is
//! processed under `catch_unwind`, and a panicking worker quarantines
//! its (possibly inconsistent) pipeline state, rebuilds a fresh one,
//! backs off exponentially, and keeps draining its ring. One poisoned
//! packet therefore costs one packet, not a core.
//!
//! The uplink drivers run the out-of-order stage-graph runtime
//! ([`crate::stagegraph`]) by default: each worker pools decode tasks
//! by K across the packets in its ring and launches them as
//! quad-in-zmm / pair-in-ymm batches, keeping the SIMD lanes full
//! under mixed-K traffic. [`run_uplink_serial`] keeps the old
//! per-packet model as the measured baseline.

use crate::downlink::{DownlinkConfig, DownlinkPipeline};
use crate::error::PipelineError;
use crate::faultinject::{FaultInjector, FaultMix};
use crate::metrics::{PipelineMetrics, RunnerMetrics, StageGraphMetrics};
use crate::observe::{FlightRecorder, TraceEvent};
use crate::packet::{Packet, PacketBuilder, Transport};
use crate::pipeline::{PacketResult, PipelineConfig, UplinkPipeline};
use crate::ring::SpscRing;
use crate::stagegraph::{StageGraph, StageGraphConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Ring capacity used by the threaded drivers.
pub const RING_CAPACITY: usize = 256;

/// Base back-off a quarantined worker sleeps after a panic; doubles
/// per consecutive panic up to [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Ceiling on the per-panic restart back-off.
const BACKOFF_CAP: Duration = Duration::from_millis(64);

/// Sustained-throughput measurement result.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Packets completed (lost to worker panics excluded).
    pub packets: usize,
    /// Packets that decoded correctly end-to-end.
    pub ok_packets: usize,
    /// Wire bytes processed.
    pub wire_bytes: usize,
    /// Wall-clock seconds.
    pub elapsed_s: f64,
    /// Goodput in Mbps over wire bytes.
    pub mbps: f64,
    /// Worker panic-restarts absorbed by the multicore driver (always
    /// 0 for the single-worker drivers, which do not isolate).
    pub worker_restarts: usize,
}

/// Per-worker fault plan for [`run_multicore_metered`]: worker `w`
/// draws from a [`FaultInjector`] seeded `seed + w`, so the fleet-wide
/// fault sequence is deterministic but workers do not march in step.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Base injector seed.
    pub seed: u64,
    /// Fault mix every worker draws from.
    pub mix: FaultMix,
}

/// Drive `n_packets` of `wire_len` bytes through the threaded pipeline
/// and measure sustained throughput.
pub fn run_throughput(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
) -> ThroughputReport {
    run_throughput_metered(
        cfg,
        transport,
        wire_len,
        n_packets,
        &RunnerMetrics::new(false, RING_CAPACITY),
        None,
    )
}

/// [`run_throughput`] with metrics attached: ring occupancy is sampled
/// at every worker pop, producer/consumer spins are counted, and each
/// completed packet lands in both the runner registry and (when given)
/// the per-stage pipeline registry.
pub fn run_throughput_metered(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    metrics: &RunnerMetrics,
    pipeline_metrics: Option<Arc<PipelineMetrics>>,
) -> ThroughputReport {
    let (mut tx_in, mut rx_in) = SpscRing::with_capacity::<Packet>(RING_CAPACITY);
    let (mut tx_out, mut rx_out) =
        SpscRing::with_capacity::<Result<PacketResult, PipelineError>>(RING_CAPACITY);
    let done = AtomicBool::new(false);
    let results = Mutex::new(Vec::with_capacity(n_packets));

    let start = Instant::now();
    std::thread::scope(|s| {
        // source
        s.spawn(|| {
            let mut b = PacketBuilder::new(5000, 6000);
            for _ in 0..n_packets {
                let p = b.build(transport, wire_len).expect("valid size");
                let mut item = p;
                loop {
                    match tx_in.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            metrics.record_push_stall();
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        // PHY worker
        s.spawn(|| {
            let pipe = match pipeline_metrics {
                Some(pm) => UplinkPipeline::with_metrics(cfg, pm),
                None => UplinkPipeline::new(cfg),
            };
            let mut processed = 0;
            while processed < n_packets {
                match rx_in.pop() {
                    Some(p) => {
                        metrics.record_occupancy(rx_in.len());
                        let r = pipe.process(&p);
                        let mut item = r;
                        loop {
                            match tx_out.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    metrics.record_push_stall();
                                    std::hint::spin_loop();
                                }
                            }
                        }
                        processed += 1;
                    }
                    None => {
                        metrics.record_pop_stall();
                        std::hint::spin_loop();
                    }
                }
            }
        });
        // sink
        s.spawn(|| {
            let mut got = 0;
            while got < n_packets {
                match rx_out.pop() {
                    Some(r) => {
                        metrics.record_packet(wire_len);
                        results.lock().unwrap().push(r);
                        got += 1;
                    }
                    None => {
                        metrics.record_pop_stall();
                        std::hint::spin_loop();
                    }
                }
            }
            done.store(true, Ordering::Release);
        });
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert!(done.load(Ordering::Acquire));

    let results = results.into_inner().unwrap();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let wire_bytes = wire_len * results.len();
    ThroughputReport {
        packets: results.len(),
        ok_packets: ok,
        wire_bytes,
        elapsed_s: elapsed,
        mbps: wire_bytes as f64 * 8.0 / elapsed / 1e6,
        worker_restarts: 0,
    }
}

/// Multi-core scaling driver: distribute packets round-robin across
/// `workers` PHY threads (one SPSC ring each — the paper's Figure 16
/// "cores required" setting, each core owning its share of the load).
pub fn run_multicore(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    workers: usize,
) -> ThroughputReport {
    run_multicore_metered(
        cfg,
        transport,
        wire_len,
        n_packets,
        workers,
        &RunnerMetrics::new(false, RING_CAPACITY),
        None,
    )
}

/// [`run_multicore`] with runner metrics and an optional per-worker
/// fault plan. Workers are panic-isolated: a panic mid-packet (real or
/// injected via [`crate::faultinject::FaultKind::WorkerPanic`])
/// quarantines the worker's pipeline, rebuilds it, and resumes after
/// an exponential back-off. The panicked packet is consumed (it counts
/// against the worker's quota but produces no result), so the driver
/// always terminates.
pub fn run_multicore_metered(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    workers: usize,
    metrics: &RunnerMetrics,
    faults: Option<FaultPlan>,
) -> ThroughputReport {
    assert!(workers >= 1);
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..workers {
        let (p, c) = SpscRing::with_capacity::<Packet>(RING_CAPACITY);
        producers.push(p);
        consumers.push(c);
    }
    let counts: Vec<usize> = (0..workers)
        .map(|w| n_packets / workers + usize::from(w < n_packets % workers))
        .collect();
    let results = Mutex::new(Vec::with_capacity(n_packets));
    let restarts = AtomicUsize::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        // one source feeding every ring round-robin
        s.spawn(move || {
            let mut producers = producers;
            let mut b = PacketBuilder::new(7000, 7001);
            for i in 0..n_packets {
                let mut item = b.build(transport, wire_len).expect("valid size");
                let w = i % workers;
                loop {
                    match producers[w].push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        for (w, (mut rx, quota)) in consumers.into_iter().zip(counts).enumerate() {
            let results = &results;
            let restarts = &restarts;
            s.spawn(move || {
                let build = |generation: u64| -> UplinkPipeline {
                    match faults {
                        Some(plan) => UplinkPipeline::with_faults(
                            cfg,
                            // Re-seed per generation so a rebuilt worker
                            // does not replay the fault that killed it
                            // in lock-step.
                            FaultInjector::with_mix(
                                plan.seed
                                    .wrapping_add(w as u64)
                                    .wrapping_add(generation.wrapping_mul(0x9e37_79b9)),
                                plan.mix,
                            ),
                        ),
                        None => UplinkPipeline::new(cfg),
                    }
                };
                let mut pipe = build(0);
                let mut generation = 0u64;
                let mut consecutive_panics = 0u32;
                let mut done = 0;
                while done < quota {
                    match rx.pop() {
                        Some(p) => {
                            metrics.record_occupancy(rx.len());
                            match catch_unwind(AssertUnwindSafe(|| pipe.process(&p))) {
                                Ok(r) => {
                                    consecutive_panics = 0;
                                    metrics.record_packet(wire_len);
                                    results.lock().unwrap().push(r);
                                }
                                Err(_) => {
                                    // Quarantine: the unwound pipeline's
                                    // interior state is suspect — drop it
                                    // wholesale and restart fresh.
                                    metrics.record_quarantine();
                                    metrics.record_worker_restart();
                                    restarts.fetch_add(1, Ordering::Relaxed);
                                    generation += 1;
                                    pipe = build(generation);
                                    let backoff = BACKOFF_BASE
                                        .saturating_mul(1 << consecutive_panics.min(6))
                                        .min(BACKOFF_CAP);
                                    consecutive_panics += 1;
                                    std::thread::sleep(backoff);
                                }
                            }
                            done += 1;
                        }
                        None => {
                            metrics.record_pop_stall();
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let results = results.into_inner().unwrap();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let wire_bytes = wire_len * results.len();
    ThroughputReport {
        packets: results.len(),
        ok_packets: ok,
        wire_bytes,
        elapsed_s: elapsed,
        mbps: wire_bytes as f64 * 8.0 / elapsed / 1e6,
        worker_restarts: restarts.into_inner(),
    }
}

/// One measurement of the downlink scale-out sweep: sustained
/// throughput at a given worker count, plus the per-core efficiency
/// figure the paper's Figure 16 "cores required" analysis turns on.
#[derive(Debug, Clone, Copy)]
pub struct ScaleoutPoint {
    /// PHY worker threads driven in parallel.
    pub workers: usize,
    /// Aggregate goodput in Mbps over wire bytes.
    pub mbps: f64,
    /// `mbps / workers` — flat until the host runs out of cores.
    pub mbps_per_core: f64,
    /// Packets completed.
    pub packets: usize,
    /// Packets whose DCI and data channel both decoded.
    pub ok_packets: usize,
}

/// Multi-core downlink driver: distribute subframes round-robin across
/// `workers` transmit pipelines (one SPSC ring each), mirroring
/// [`run_multicore`] on the eNB transmit side. Each worker owns a
/// [`DownlinkPipeline`], so the packed encoder's hot state (encoders,
/// rate matchers, scratch words) is per-core and contention-free.
pub fn run_downlink_multicore(
    cfg: DownlinkConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    workers: usize,
) -> ThroughputReport {
    assert!(workers >= 1);
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..workers {
        let (p, c) = SpscRing::with_capacity::<Packet>(RING_CAPACITY);
        producers.push(p);
        consumers.push(c);
    }
    let counts: Vec<usize> = (0..workers)
        .map(|w| n_packets / workers + usize::from(w < n_packets % workers))
        .collect();
    let results = Mutex::new(Vec::with_capacity(n_packets));

    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut producers = producers;
            let mut b = PacketBuilder::new(8000, 8001);
            for i in 0..n_packets {
                let mut item = b.build(transport, wire_len).expect("valid size");
                let w = i % workers;
                loop {
                    match producers[w].push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        for (mut rx, quota) in consumers.into_iter().zip(counts) {
            let results = &results;
            s.spawn(move || {
                let pipe = DownlinkPipeline::new(cfg);
                let mut done = 0;
                while done < quota {
                    match rx.pop() {
                        Some(p) => {
                            let r = pipe.process(&p);
                            results.lock().unwrap().push(r);
                            done += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let results = results.into_inner().unwrap();
    let ok = results.iter().filter(|r| r.dci_ok && r.data_ok).count();
    let wire_bytes = wire_len * results.len();
    ThroughputReport {
        packets: results.len(),
        ok_packets: ok,
        wire_bytes,
        elapsed_s: elapsed,
        mbps: wire_bytes as f64 * 8.0 / elapsed / 1e6,
        worker_restarts: 0,
    }
}

/// Multi-core uplink driver: distribute received subframes round-robin
/// across `workers` receive pipelines (one SPSC ring each). The
/// counterpart of [`run_downlink_multicore`] on the eNB receive side.
///
/// Since the stage-graph runtime landed this is a thin wrapper over
/// [`run_uplink_stagegraph_metered`] with a single traffic class:
/// every worker owns a [`StageGraph`] that pools decode tasks across
/// the packets in its ring and launches them as quad-in-zmm /
/// pair-in-ymm batches — batch SIMD is the default uplink path. For
/// the old per-packet serial model (the comparison baseline), see
/// [`run_uplink_serial`].
pub fn run_uplink_multicore(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    workers: usize,
) -> ThroughputReport {
    run_uplink_stagegraph_metered(
        cfg,
        &[(transport, wire_len)],
        n_packets,
        workers,
        StageGraphConfig::default(),
        &RunnerMetrics::new(false, RING_CAPACITY),
        None,
        None,
        None,
        None,
    )
}

/// The pre-stage-graph uplink driver: one packet fully processed at a
/// time per worker ([`UplinkPipeline::process`]), no cross-packet
/// batch formation. Kept as the measured baseline the stage-graph
/// runtime is gated against (`uplink_stagegraph` benchgate suite); not
/// panic-isolated.
pub fn run_uplink_serial(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    workers: usize,
) -> ThroughputReport {
    run_uplink_serial_mixed(cfg, &[(transport, wire_len)], n_packets, workers)
}

/// [`run_uplink_serial`] over a mixed workload: packet `i` draws
/// `(transport, wire_len)` from `classes[i % classes.len()]` — the
/// same round-robin schedule as [`run_uplink_stagegraph_metered`], so
/// serial and stage-graph runs see byte-identical traffic.
pub fn run_uplink_serial_mixed(
    cfg: PipelineConfig,
    classes: &[(Transport, usize)],
    n_packets: usize,
    workers: usize,
) -> ThroughputReport {
    assert!(workers >= 1);
    assert!(!classes.is_empty());
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..workers {
        let (p, c) = SpscRing::with_capacity::<Packet>(RING_CAPACITY);
        producers.push(p);
        consumers.push(c);
    }
    let counts: Vec<usize> = (0..workers)
        .map(|w| n_packets / workers + usize::from(w < n_packets % workers))
        .collect();
    let results = Mutex::new(Vec::with_capacity(n_packets));
    let wire_bytes = AtomicUsize::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut producers = producers;
            let mut b = PacketBuilder::new(9000, 9001);
            for i in 0..n_packets {
                let (transport, wire_len) = classes[i % classes.len()];
                let mut item = b.build(transport, wire_len).expect("valid size");
                let w = i % workers;
                loop {
                    match producers[w].push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        for (w, (mut rx, quota)) in consumers.into_iter().zip(counts).enumerate() {
            let results = &results;
            let wire_bytes = &wire_bytes;
            s.spawn(move || {
                let pipe = UplinkPipeline::new(cfg);
                let mut done = 0;
                while done < quota {
                    match rx.pop() {
                        Some(p) => {
                            // Worker w's j-th packet is global packet
                            // w + j·workers (round-robin source).
                            let i = w + done * workers;
                            wire_bytes.fetch_add(classes[i % classes.len()].1, Ordering::Relaxed);
                            let r = pipe.process(&p);
                            results.lock().unwrap().push(r);
                            done += 1;
                        }
                        None => std::hint::spin_loop(),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let results = results.into_inner().unwrap();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let wire_bytes = wire_bytes.into_inner();
    ThroughputReport {
        packets: results.len(),
        ok_packets: ok,
        wire_bytes,
        elapsed_s: elapsed,
        mbps: wire_bytes as f64 * 8.0 / elapsed / 1e6,
        worker_restarts: 0,
    }
}

/// The stage-graph uplink driver: each worker owns a [`StageGraph`]
/// that decomposes its packets into stage tasks, pools decode tasks by
/// K **across packets**, launches quad/pair batches as lanes fill (or
/// deadlines near), and retires completions out of order through the
/// ROB with per-UE in-order delivery. Packet `i` carries traffic class
/// `classes[i % classes.len()]`; the class index doubles as the UE id,
/// so each class's packets are delivered in admission order.
///
/// Workers are panic-isolated like [`run_multicore_metered`]: a panic
/// during admission (real or injected
/// [`crate::faultinject::FaultKind::WorkerPanic`]) quarantines only
/// the worker's *pipeline* — the graph's ROB, pools and sequence state
/// survive, so packets staged before the panic still retire and the
/// `packets + worker_restarts == n` invariant holds.
#[allow(clippy::too_many_arguments)]
pub fn run_uplink_stagegraph_metered(
    cfg: PipelineConfig,
    classes: &[(Transport, usize)],
    n_packets: usize,
    workers: usize,
    sg_cfg: StageGraphConfig,
    metrics: &RunnerMetrics,
    sg_metrics: Option<Arc<StageGraphMetrics>>,
    faults: Option<FaultPlan>,
    recorder: Option<Arc<FlightRecorder>>,
    pipe_metrics: Option<Arc<PipelineMetrics>>,
) -> ThroughputReport {
    assert!(workers >= 1);
    assert!(!classes.is_empty());
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..workers {
        let (p, c) = SpscRing::with_capacity::<Packet>(RING_CAPACITY);
        producers.push(p);
        consumers.push(c);
    }
    let counts: Vec<usize> = (0..workers)
        .map(|w| n_packets / workers + usize::from(w < n_packets % workers))
        .collect();
    let results = Mutex::new(Vec::with_capacity(n_packets));
    let wire_bytes = AtomicUsize::new(0);
    let restarts = AtomicUsize::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut producers = producers;
            let mut b = PacketBuilder::new(9000, 9001);
            for i in 0..n_packets {
                let (transport, wire_len) = classes[i % classes.len()];
                let mut item = b.build(transport, wire_len).expect("valid size");
                let w = i % workers;
                loop {
                    match producers[w].push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        for (w, (mut rx, quota)) in consumers.into_iter().zip(counts).enumerate() {
            let results = &results;
            let wire_bytes = &wire_bytes;
            let restarts = &restarts;
            let sg_metrics = sg_metrics.clone();
            let recorder = recorder.clone();
            let pipe_metrics = pipe_metrics.clone();
            s.spawn(move || {
                let build = move |generation: u64| -> UplinkPipeline {
                    let mut pipe = match &pipe_metrics {
                        Some(m) => UplinkPipeline::with_metrics(cfg, m.clone()),
                        None => UplinkPipeline::new(cfg),
                    };
                    if let Some(plan) = faults {
                        // Re-seed per generation so a rebuilt worker
                        // does not replay the fault that killed it in
                        // lock-step.
                        pipe.set_fault_injector(FaultInjector::with_mix(
                            plan.seed
                                .wrapping_add(w as u64)
                                .wrapping_add(generation.wrapping_mul(0x9e37_79b9)),
                            plan.mix,
                        ));
                    }
                    pipe
                };
                let mut graph = StageGraph::new(build(0), sg_cfg);
                if let Some(m) = sg_metrics {
                    graph.set_metrics(m);
                }
                if let Some(rec) = &recorder {
                    graph.set_recorder(rec.clone());
                }
                let mut generation = 0u64;
                let mut consecutive_panics = 0u32;
                let mut done = 0;
                let collect = |graph: &mut StageGraph| {
                    while let Some((ue, r)) = graph.pop_completed() {
                        let wl = classes[ue as usize].1;
                        wire_bytes.fetch_add(wl, Ordering::Relaxed);
                        metrics.record_packet(wl);
                        results.lock().unwrap().push(r);
                    }
                };
                while done < quota {
                    match rx.pop() {
                        Some(p) => {
                            metrics.record_occupancy(rx.len());
                            let i = w + done * workers;
                            let ue = (i % classes.len()) as u64;
                            match catch_unwind(AssertUnwindSafe(|| graph.admit(ue, &p))) {
                                Ok(()) => consecutive_panics = 0,
                                Err(_) => {
                                    // Quarantine the pipeline only: the
                                    // panic unwound out of `prepare`
                                    // before anything was staged, so the
                                    // graph's ROB/pools/sequences are
                                    // intact and in-flight packets still
                                    // retire.
                                    metrics.record_quarantine();
                                    metrics.record_worker_restart();
                                    restarts.fetch_add(1, Ordering::Relaxed);
                                    generation += 1;
                                    if let Some(rec) = &recorder {
                                        rec.record(TraceEvent::restart(w, generation));
                                    }
                                    graph.replace_pipeline(build(generation));
                                    let backoff = BACKOFF_BASE
                                        .saturating_mul(1 << consecutive_panics.min(6))
                                        .min(BACKOFF_CAP);
                                    consecutive_panics += 1;
                                    std::thread::sleep(backoff);
                                }
                            }
                            collect(&mut graph);
                            done += 1;
                        }
                        None => {
                            metrics.record_pop_stall();
                            std::hint::spin_loop();
                        }
                    }
                }
                graph.drain();
                collect(&mut graph);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let results = results.into_inner().unwrap();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    let wire_bytes = wire_bytes.into_inner();
    ThroughputReport {
        packets: results.len(),
        ok_packets: ok,
        wire_bytes,
        elapsed_s: elapsed,
        mbps: wire_bytes as f64 * 8.0 / elapsed / 1e6,
        worker_restarts: restarts.into_inner(),
    }
}

/// Sweep the uplink driver over 1..=`max_workers` worker counts and
/// report aggregate and per-core throughput at each point — the
/// receive-side twin of [`downlink_scaleout_sweep`], feeding the
/// `uplink_scaleout` benchgate suite.
pub fn uplink_scaleout_sweep(
    cfg: PipelineConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    max_workers: usize,
) -> Vec<ScaleoutPoint> {
    (1..=max_workers)
        .map(|w| {
            let rep = run_uplink_multicore(cfg, transport, wire_len, n_packets, w);
            ScaleoutPoint {
                workers: w,
                mbps: rep.mbps,
                mbps_per_core: rep.mbps / w as f64,
                packets: rep.packets,
                ok_packets: rep.ok_packets,
            }
        })
        .collect()
}

/// Sweep the downlink driver over 1..=`max_workers` worker counts and
/// report aggregate and per-core throughput at each point.
pub fn downlink_scaleout_sweep(
    cfg: DownlinkConfig,
    transport: Transport,
    wire_len: usize,
    n_packets: usize,
    max_workers: usize,
) -> Vec<ScaleoutPoint> {
    (1..=max_workers)
        .map(|w| {
            let rep = run_downlink_multicore(cfg, transport, wire_len, n_packets, w);
            ScaleoutPoint {
                workers: w,
                mbps: rep.mbps,
                mbps_per_core: rep.mbps / w as f64,
                packets: rep.packets,
                ok_packets: rep.ok_packets,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultinject::FaultKind;

    #[test]
    fn threaded_pipeline_processes_all_packets() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let rep = run_throughput(cfg, Transport::Udp, 128, 8);
        assert_eq!(rep.packets, 8);
        assert_eq!(rep.ok_packets, 8, "clean channel must decode everything");
        assert!(rep.mbps > 0.0);
        assert_eq!(rep.wire_bytes, 8 * 128);
        assert_eq!(rep.worker_restarts, 0);
    }

    #[test]
    fn tcp_flow_also_flows() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let rep = run_throughput(cfg, Transport::Tcp, 256, 4);
        assert_eq!(rep.ok_packets, 4);
    }

    #[test]
    fn metered_run_populates_both_registries() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let rm = RunnerMetrics::new(true, RING_CAPACITY);
        let pm = Arc::new(PipelineMetrics::new(true));
        let rep = run_throughput_metered(cfg, Transport::Udp, 128, 6, &rm, Some(pm.clone()));
        assert_eq!(rep.ok_packets, 6);
        assert_eq!(rm.packets.get(), 6);
        assert_eq!(rm.wire_bytes.get(), 6 * 128);
        assert_eq!(rm.ring_occupancy.count(), 6, "one occupancy sample per pop");
        assert_eq!(pm.packets.get(), 6);
        assert!(pm.stage(crate::metrics::Stage::Decode).count() > 0);
    }

    #[test]
    fn multicore_distributes_and_loses_nothing() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        for workers in [1usize, 2, 3] {
            let rep = run_multicore(cfg, Transport::Udp, 128, 9, workers);
            assert_eq!(rep.packets, 9, "workers={workers}");
            assert_eq!(rep.ok_packets, 9, "workers={workers}");
            assert_eq!(rep.worker_restarts, 0, "workers={workers}");
        }
    }

    #[test]
    fn multicore_scales_throughput() {
        // Scaling can only manifest with real hardware parallelism;
        // correctness is asserted unconditionally, speedup only when
        // the host has cores to scale onto.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cfg = PipelineConfig {
            snr_db: 30.0,
            decoder_iterations: 4,
            ..Default::default()
        };
        let one = run_multicore(cfg, Transport::Udp, 512, 12, 1);
        let two = run_multicore(cfg, Transport::Udp, 512, 12, 2);
        assert_eq!(one.ok_packets, 12);
        assert_eq!(two.ok_packets, 12);
        if cores >= 3 {
            assert!(
                two.mbps > one.mbps * 1.2,
                "2 workers should scale on a {cores}-core host: {:.1} vs {:.1} Mbps",
                one.mbps,
                two.mbps
            );
        }
    }

    #[test]
    fn downlink_multicore_distributes_and_loses_nothing() {
        let cfg = DownlinkConfig {
            snr_db: 28.0,
            ..Default::default()
        };
        for workers in [1usize, 2, 3] {
            let rep = run_downlink_multicore(cfg, Transport::Udp, 200, 9, workers);
            assert_eq!(rep.packets, 9, "workers={workers}");
            assert_eq!(rep.ok_packets, 9, "workers={workers}");
            assert!(rep.mbps > 0.0, "workers={workers}");
        }
    }

    #[test]
    fn downlink_sweep_covers_every_worker_count() {
        let cfg = DownlinkConfig {
            snr_db: 28.0,
            ..Default::default()
        };
        let sweep = downlink_scaleout_sweep(cfg, Transport::Udp, 200, 6, 3);
        assert_eq!(sweep.len(), 3);
        for (i, pt) in sweep.iter().enumerate() {
            assert_eq!(pt.workers, i + 1);
            assert_eq!(pt.packets, 6);
            assert_eq!(pt.ok_packets, 6, "clean channel at every width");
            assert!(pt.mbps > 0.0);
            let per_core = pt.mbps / pt.workers as f64;
            assert!((pt.mbps_per_core - per_core).abs() < 1e-9);
        }
    }

    #[test]
    fn uplink_multicore_distributes_and_loses_nothing() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            batch_decode: true,
            ..Default::default()
        };
        for workers in [1usize, 2, 3] {
            let rep = run_uplink_multicore(cfg, Transport::Udp, 200, 9, workers);
            assert_eq!(rep.packets, 9, "workers={workers}");
            assert_eq!(rep.ok_packets, 9, "workers={workers}");
            assert!(rep.mbps > 0.0, "workers={workers}");
        }
    }

    #[test]
    fn uplink_sweep_covers_every_worker_count() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            batch_decode: true,
            ..Default::default()
        };
        let sweep = uplink_scaleout_sweep(cfg, Transport::Udp, 200, 6, 3);
        assert_eq!(sweep.len(), 3);
        for (i, pt) in sweep.iter().enumerate() {
            assert_eq!(pt.workers, i + 1);
            assert_eq!(pt.packets, 6);
            assert_eq!(pt.ok_packets, 6, "clean channel at every width");
            assert!(pt.mbps > 0.0);
            let per_core = pt.mbps / pt.workers as f64;
            assert!((pt.mbps_per_core - per_core).abs() < 1e-9);
        }
    }

    #[test]
    fn uplink_serial_baseline_still_flows() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let rep = run_uplink_serial(cfg, Transport::Udp, 200, 9, 2);
        assert_eq!(rep.packets, 9);
        assert_eq!(rep.ok_packets, 9);
        assert_eq!(rep.wire_bytes, 9 * 200);
    }

    #[test]
    fn stagegraph_mixed_classes_lose_nothing_and_fill_lanes() {
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        // paper_sweep-style mixed-K workload: 2 transports × sizes.
        let classes: Vec<(Transport, usize)> = [64usize, 300, 900, 1400]
            .into_iter()
            .flat_map(|s| [(Transport::Udp, s), (Transport::Tcp, s)])
            .collect();
        let sg = Arc::new(crate::metrics::StageGraphMetrics::default());
        let rm = RunnerMetrics::new(true, RING_CAPACITY);
        let n = classes.len() * 8;
        let rep = run_uplink_stagegraph_metered(
            cfg,
            &classes,
            n,
            2,
            StageGraphConfig::default(),
            &rm,
            Some(sg.clone()),
            None,
            None,
            None,
        );
        assert_eq!(rep.packets, n);
        assert_eq!(rep.ok_packets, n, "clean channel must decode everything");
        let expect_bytes: usize = classes.iter().map(|(_, l)| l * 8).sum();
        assert_eq!(rep.wire_bytes, expect_bytes);
        assert_eq!(rm.packets.get(), n as u64);
        // Same-K tasks recur every `classes.len()/2` admissions per
        // worker — far under the age bound, so quads dominate.
        assert!(
            sg.lane_occupancy() > 0.5,
            "round-robin mixed-K should mostly fill lanes: {:.2} (quad {} pair {} single {})",
            sg.lane_occupancy(),
            sg.quad_blocks.get(),
            sg.pair_blocks.get(),
            sg.single_blocks.get(),
        );
    }

    #[test]
    fn stagegraph_survives_injected_worker_panics() {
        // Same invariant as the serial multicore driver: a panicking
        // admission costs exactly one packet, and everything staged
        // before the panic still retires through the ROB.
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let plan = FaultPlan {
            seed: 99,
            mix: FaultMix::only(FaultKind::Clean)
                .with_weight(FaultKind::WorkerPanic, 1)
                .with_weight(FaultKind::Clean, 7),
        };
        let rm = RunnerMetrics::new(true, RING_CAPACITY);
        let n = 48;
        let rep = run_uplink_stagegraph_metered(
            cfg,
            &[(Transport::Udp, 128), (Transport::Udp, 600)],
            n,
            2,
            StageGraphConfig::default(),
            &rm,
            None,
            Some(plan),
            None,
            None,
        );
        assert!(rep.worker_restarts > 0, "the plan must have fired: {rep:?}");
        assert_eq!(
            rep.packets + rep.worker_restarts,
            n,
            "every packet either completes or is accounted to a panic"
        );
        assert_eq!(rep.ok_packets, rep.packets, "survivors are clean traffic");
        assert_eq!(rm.worker_restarts.get(), rep.worker_restarts as u64);
        assert_eq!(rm.quarantined.get(), rep.worker_restarts as u64);
    }

    #[test]
    fn multicore_survives_injected_worker_panics() {
        // 1-in-8 packets panic mid-decode; every worker must absorb
        // its panics, restart, and still drain its quota.
        let cfg = PipelineConfig {
            snr_db: 30.0,
            ..Default::default()
        };
        let plan = FaultPlan {
            seed: 99,
            mix: FaultMix::only(FaultKind::Clean)
                .with_weight(FaultKind::WorkerPanic, 1)
                .with_weight(FaultKind::Clean, 7),
        };
        let rm = RunnerMetrics::new(true, RING_CAPACITY);
        let n = 48;
        let rep = run_multicore_metered(cfg, Transport::Udp, 128, n, 2, &rm, Some(plan));
        assert!(rep.worker_restarts > 0, "the plan must have fired: {rep:?}");
        assert_eq!(
            rep.packets + rep.worker_restarts,
            n,
            "every packet either completes or is accounted to a panic"
        );
        assert_eq!(rep.ok_packets, rep.packets, "survivors are clean traffic");
        assert!(rep.mbps > 0.0, "throughput must survive the panics");
        assert_eq!(rm.worker_restarts.get(), rep.worker_restarts as u64);
        assert_eq!(rm.quarantined.get(), rep.worker_restarts as u64);
    }
}
