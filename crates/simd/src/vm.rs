//! The kernel virtual machine: evaluate + optionally trace.
//!
//! Kernels call intrinsic-shaped methods on [`Vm`]; every call evaluates
//! the operation on the portable lane model and, in tracing mode, records
//! the corresponding µop(s). Register handles ([`VReg`]) are opaque; each
//! operation result is a fresh handle carrying a fresh SSA id, so traces
//! express true data dependencies without write-after-write hazards (the
//! hardware renames anyway).

use crate::mem::{Mem, MemRef};
use crate::trace::{MicroOp, OpKind, RegId, Trace, NO_SRC};
use crate::value::VecVal;
use crate::width::RegWidth;

/// Execution mode of a [`Vm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmMode {
    /// Evaluate only.
    Native,
    /// Evaluate and record a µop trace.
    Tracing,
}

/// Opaque handle to a live vector register value inside a [`Vm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VReg(u32);

#[derive(Debug, Clone)]
struct Slot {
    val: VecVal,
    ssa: RegId,
    /// Set when the architectural register backing this value has been
    /// clobbered (`vextracti32x8` semantics, paper §5.2) and must be
    /// reloaded before reuse.
    dead: bool,
}

/// Virtual machine over vector registers and a flat [`Mem`].
#[derive(Debug)]
pub struct Vm {
    mem: Mem,
    slots: Vec<Slot>,
    mode: VmMode,
    trace: Trace,
}

impl Vm {
    /// Native-mode VM over `mem`.
    pub fn native(mem: Mem) -> Self {
        Self {
            mem,
            slots: Vec::new(),
            mode: VmMode::Native,
            trace: Trace::new(),
        }
    }

    /// Tracing-mode VM over `mem`.
    pub fn tracing(mem: Mem) -> Self {
        Self {
            mem,
            slots: Vec::new(),
            mode: VmMode::Tracing,
            trace: Trace::new(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> VmMode {
        self.mode
    }

    /// Shared memory view.
    pub fn mem(&self) -> &Mem {
        &self.mem
    }

    /// Mutable memory view (for staging kernel inputs).
    pub fn mem_mut(&mut self) -> &mut Mem {
        &mut self.mem
    }

    /// Take the recorded trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Borrow the recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Inspect a register's value (test/oracle use).
    pub fn value(&self, r: VReg) -> VecVal {
        let s = &self.slots[r.0 as usize];
        assert!(
            !s.dead,
            "use of clobbered register {r:?} (reload required after vextracti32x8)"
        );
        s.val
    }

    fn ssa_of(&self, r: VReg) -> RegId {
        self.slots[r.0 as usize].ssa
    }

    fn new_slot(&mut self, val: VecVal) -> (VReg, RegId) {
        let ssa = self.trace.fresh_reg();
        let idx = self.slots.len() as u32;
        self.slots.push(Slot {
            val,
            ssa,
            dead: false,
        });
        (VReg(idx), ssa)
    }

    fn record(&mut self, op: MicroOp) {
        if self.mode == VmMode::Tracing {
            self.trace.push(op);
        }
    }

    fn uop(kind: OpKind, dst: Option<RegId>, srcs: [RegId; 3], first: bool) -> MicroOp {
        MicroOp {
            kind,
            dst,
            srcs,
            bytes: 0,
            addr: None,
            first_of_instr: first,
            mispredict: false,
        }
    }

    // ---------------------------------------------------------------
    // data movement
    // ---------------------------------------------------------------

    /// Full-register aligned load of one `width` register from `mr`.
    /// `mr.len` must equal `width.lanes()`.
    pub fn load(&mut self, width: RegWidth, mr: MemRef) -> VReg {
        assert_eq!(
            mr.len,
            width.lanes(),
            "load region must be exactly one register"
        );
        let val = VecVal::from_lanes(width, self.mem.read(mr));
        let (r, ssa) = self.new_slot(val);
        let mut op = Self::uop(OpKind::VLoad, Some(ssa), [NO_SRC; 3], true);
        op.bytes = width.bytes() as u16;
        op.addr = Some(mr.byte_addr());
        self.record(op);
        r
    }

    /// `vpbroadcastw m16`: load the element at `addr` and replicate it
    /// into every lane of a `width` register. The γ-phase idiom of the
    /// SIMD decoder (`_mm_set1_epi16(input[k])` in OAI).
    pub fn broadcast_load(&mut self, width: RegWidth, addr: usize) -> VReg {
        let v = self.mem.get(addr);
        let (r, ssa) = self.new_slot(VecVal::splat(width, v));
        let mut op = Self::uop(OpKind::VBroadcastLoad, Some(ssa), [NO_SRC; 3], true);
        op.bytes = 2;
        op.addr = Some((addr * 2) as u64);
        self.record(op);
        r
    }

    /// Scalar 16-bit memory-to-memory copy (`movzx` + `mov`), used for
    /// the interleaver gather/scatter phases between half-iterations.
    pub fn copy16(&mut self, src: usize, dst: usize) {
        let v = self.mem.get(src);
        self.mem.set(dst, v);
        let ld_ssa = self.trace.fresh_reg();
        let mut ld = Self::uop(OpKind::VLoad, Some(ld_ssa), [NO_SRC; 3], true);
        ld.bytes = 2;
        ld.addr = Some((src * 2) as u64);
        self.record(ld);
        let mut st = Self::uop(OpKind::StoreLane, None, [ld_ssa, NO_SRC, NO_SRC], true);
        st.bytes = 2;
        st.addr = Some((dst * 2) as u64);
        self.record(st);
    }

    /// Scalar 16-bit load → transform → store (`mov` + ALU + `mov`):
    /// reads the element at `src`, applies `f`, writes it to `dst`, and
    /// records load + scalar-ALU + store µops. Used for the extrinsic
    /// scale/interleave phases between half-iterations.
    pub fn scalar_map16(&mut self, src: usize, dst: usize, f: impl Fn(i16) -> i16) {
        let v = f(self.mem.get(src));
        self.mem.set(dst, v);
        let ld_ssa = self.trace.fresh_reg();
        let mut ld = Self::uop(OpKind::VLoad, Some(ld_ssa), [NO_SRC; 3], true);
        ld.bytes = 2;
        ld.addr = Some((src * 2) as u64);
        self.record(ld);
        let alu_ssa = self.trace.fresh_reg();
        self.record(Self::uop(
            OpKind::SAlu,
            Some(alu_ssa),
            [ld_ssa, NO_SRC, NO_SRC],
            true,
        ));
        let mut st = Self::uop(OpKind::StoreLane, None, [alu_ssa, NO_SRC, NO_SRC], true);
        st.bytes = 2;
        st.addr = Some((dst * 2) as u64);
        self.record(st);
    }

    /// Indexed load: like [`Vm::load`], but the effective address
    /// depends on a previously computed register (`idx_src`), as in the
    /// turbo interleaver's table-driven gathers. The µop carries the
    /// dependency, so the scheduler cannot overlap the access with the
    /// index computation — cache latency becomes visible.
    pub fn load_indexed(&mut self, width: RegWidth, mr: MemRef, idx_src: VReg) -> VReg {
        assert_eq!(
            mr.len,
            width.lanes(),
            "load region must be exactly one register"
        );
        let val = VecVal::from_lanes(width, self.mem.read(mr));
        let dep = self.ssa_of(idx_src);
        let (r, ssa) = self.new_slot(val);
        let mut op = Self::uop(OpKind::VLoad, Some(ssa), [dep, NO_SRC, NO_SRC], true);
        op.bytes = width.bytes() as u16;
        op.addr = Some(mr.byte_addr());
        self.record(op);
        r
    }

    /// Full-register aligned store of `r` to `mr`.
    pub fn store(&mut self, r: VReg, mr: MemRef) {
        let val = self.value(r);
        assert_eq!(
            mr.len,
            val.width().lanes(),
            "store region must be exactly one register"
        );
        self.mem.write(mr).copy_from_slice(val.lanes());
        let src = self.ssa_of(r);
        let mut op = Self::uop(OpKind::VStore, None, [src, NO_SRC, NO_SRC], true);
        op.bytes = val.width().bytes() as u16;
        op.addr = Some(mr.byte_addr());
        self.record(op);
    }

    /// `pextrw`-to-memory: move lane `lane` of `r` to element address
    /// `addr`. This is the baseline arrangement's workhorse and expands
    /// to two movement-class µops (extract + 2-byte store), both of
    /// which contend on the store ports under the paper's port model.
    pub fn extract_store(&mut self, r: VReg, lane: usize, addr: usize) {
        let val = self.value(r);
        let v = val.lane(lane);
        self.mem.set(addr, v);
        let src = self.ssa_of(r);
        let ext_ssa = self.trace.fresh_reg();
        let ext = Self::uop(
            OpKind::ExtractLane,
            Some(ext_ssa),
            [src, NO_SRC, NO_SRC],
            true,
        );
        self.record(ext);
        let mut st = Self::uop(OpKind::StoreLane, None, [ext_ssa, NO_SRC, NO_SRC], false);
        st.bytes = 2;
        st.addr = Some((addr * 2) as u64);
        self.record(st);
    }

    /// `vextracti128`: produce the 128-bit half `idx` of a ymm/zmm
    /// register as a fresh xmm value. Non-destructive, but issues on the
    /// movement ports (paper §5.2 ymm penalty path).
    pub fn extract128(&mut self, r: VReg, idx: usize) -> VReg {
        let val = self.value(r);
        assert!(
            val.width() != RegWidth::Sse128,
            "extract128 requires a wider source"
        );
        let out = val.extract128(idx);
        let src = self.ssa_of(r);
        let (nr, ssa) = self.new_slot(out);
        self.record(Self::uop(
            OpKind::Extract128,
            Some(ssa),
            [src, NO_SRC, NO_SRC],
            true,
        ));
        nr
    }

    /// `vextracti32x8 $idx`: produce a 256-bit half of a zmm register.
    ///
    /// Models the paper's §5.2 semantics: after the extract, the source
    /// zmm is **clobbered** ("the upper 256 bits in zmm will be
    /// removed") and any further use panics until the kernel reloads it
    /// with [`Vm::load`] (`vmovdqa64`). This is what makes the original
    /// mechanism *slower* at 512 bits than at 256.
    pub fn extract256_clobber(&mut self, r: VReg, idx: usize) -> VReg {
        let val = self.value(r);
        let out = val.extract256(idx);
        let src = self.ssa_of(r);
        self.slots[r.0 as usize].dead = true;
        let (nr, ssa) = self.new_slot(out);
        self.record(Self::uop(
            OpKind::Extract256,
            Some(ssa),
            [src, NO_SRC, NO_SRC],
            true,
        ));
        nr
    }

    // ---------------------------------------------------------------
    // vector ALU
    // ---------------------------------------------------------------

    fn bin(
        &mut self,
        kind: OpKind,
        a: VReg,
        b: VReg,
        f: impl Fn(VecVal, VecVal) -> VecVal,
    ) -> VReg {
        let out = f(self.value(a), self.value(b));
        let (sa, sb) = (self.ssa_of(a), self.ssa_of(b));
        let (r, ssa) = self.new_slot(out);
        self.record(Self::uop(kind, Some(ssa), [sa, sb, NO_SRC], true));
        r
    }

    /// `_mm_adds_epi16`.
    pub fn adds(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VAdds, a, b, VecVal::adds)
    }

    /// `_mm_subs_epi16`.
    pub fn subs(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VSubs, a, b, VecVal::subs)
    }

    /// `_mm_max_epi16`.
    pub fn max(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VMax, a, b, VecVal::max)
    }

    /// `_mm_min_epi16`.
    pub fn min(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VMin, a, b, VecVal::min)
    }

    /// `_mm_add_epi16` (wrapping).
    pub fn add_wrap(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VAdd, a, b, VecVal::add_wrap)
    }

    /// `vpand`.
    pub fn and(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VAnd, a, b, VecVal::and)
    }

    /// `vpor`.
    pub fn or(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VOr, a, b, VecVal::or)
    }

    /// `vpxor`.
    pub fn xor(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VXor, a, b, VecVal::xor)
    }

    /// `vpandn`: `!a & b`.
    pub fn andnot(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VAndnot, a, b, VecVal::andnot)
    }

    /// `_mm_cmpeq_epi16`.
    pub fn cmpeq(&mut self, a: VReg, b: VReg) -> VReg {
        self.bin(OpKind::VCmpEq, a, b, VecVal::cmpeq)
    }

    /// `_mm_srai_epi16` by immediate.
    pub fn srai(&mut self, a: VReg, imm: u32) -> VReg {
        let out = self.value(a).srai(imm);
        let sa = self.ssa_of(a);
        let (r, ssa) = self.new_slot(out);
        self.record(Self::uop(
            OpKind::VSrai,
            Some(ssa),
            [sa, NO_SRC, NO_SRC],
            true,
        ));
        r
    }

    /// `_mm_slli_epi16` by immediate.
    pub fn slli(&mut self, a: VReg, imm: u32) -> VReg {
        let out = self.value(a).slli(imm);
        let sa = self.ssa_of(a);
        let (r, ssa) = self.new_slot(out);
        self.record(Self::uop(
            OpKind::VSlli,
            Some(ssa),
            [sa, NO_SRC, NO_SRC],
            true,
        ));
        r
    }

    /// `_mm_set1_epi16`: broadcast an immediate/scalar.
    pub fn splat(&mut self, width: RegWidth, v: i16) -> VReg {
        let (r, ssa) = self.new_slot(VecVal::splat(width, v));
        self.record(Self::uop(OpKind::VBroadcast, Some(ssa), [NO_SRC; 3], true));
        r
    }

    /// Materialize an arbitrary constant (mask registers etc.). Costs a
    /// load µop: real kernels keep masks in memory and load them once.
    pub fn const_vec(&mut self, val: VecVal) -> VReg {
        let lanes: Vec<i16> = val.lanes().to_vec();
        let mr = self.mem.alloc_from(&lanes);
        self.load(val.width(), mr)
    }

    /// `pshufb`/`vpermw`: full lane permutation with zeroing. One
    /// vector-ALU µop.
    pub fn shuffle(&mut self, a: VReg, table: &[Option<u8>]) -> VReg {
        let out = self.value(a).shuffle(table);
        let sa = self.ssa_of(a);
        let (r, ssa) = self.new_slot(out);
        self.record(Self::uop(
            OpKind::VShuffle,
            Some(ssa),
            [sa, NO_SRC, NO_SRC],
            true,
        ));
        r
    }

    /// Lane rotate-left expressed as a single shuffle-class ALU µop.
    /// The memory-resident "rotation mimic" (paper Fig 12) is modeled in
    /// `vran-arrange` with shifted loads instead; this variant is the
    /// in-register form used by the decoder-facing APCM kernel.
    pub fn rotate_lanes_left(&mut self, a: VReg, n: usize) -> VReg {
        let out = self.value(a).rotate_lanes_left(n);
        let sa = self.ssa_of(a);
        let (r, ssa) = self.new_slot(out);
        self.record(Self::uop(
            OpKind::VShuffle,
            Some(ssa),
            [sa, NO_SRC, NO_SRC],
            true,
        ));
        r
    }

    // ---------------------------------------------------------------
    // scalar / control
    // ---------------------------------------------------------------

    /// Emit `n` independent scalar-ALU µops (address arithmetic, loop
    /// counters). They carry no vector dependencies.
    pub fn scalar_ops(&mut self, n: usize) {
        for _ in 0..n {
            self.record(Self::uop(OpKind::SAlu, None, [NO_SRC; 3], true));
        }
    }

    /// Emit a conditional branch µop; `mispredict` marks dynamic
    /// instances the front-end will squash on (bad-speculation slots).
    pub fn branch(&mut self, mispredict: bool) {
        let mut op = Self::uop(OpKind::SBranch, None, [NO_SRC; 3], true);
        op.mispredict = mispredict;
        self.record(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpClass;

    fn vm_with(vals: &[i16]) -> (Vm, MemRef) {
        let mut mem = Mem::new();
        let mr = mem.alloc_from(vals);
        (Vm::tracing(mem), mr)
    }

    #[test]
    fn load_store_round_trip() {
        let (mut vm, mr) = vm_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = vm.mem_mut().alloc(8);
        let r = vm.load(RegWidth::Sse128, mr);
        vm.store(r, out);
        assert_eq!(vm.mem().read(out), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let t = vm.trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t.load_bytes(), 16);
        assert_eq!(t.store_bytes(), 16);
        // store depends on load
        assert_eq!(t.ops[1].srcs[0], t.ops[0].dst.unwrap());
    }

    #[test]
    fn extract_store_emits_two_movement_uops() {
        let (mut vm, mr) = vm_with(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let dst = vm.mem_mut().alloc(1);
        let r = vm.load(RegWidth::Sse128, mr);
        vm.extract_store(r, 3, dst.base);
        assert_eq!(vm.mem().get(dst.base), 40);
        let t = vm.trace();
        assert_eq!(t.len(), 3); // load + extract + store16
        assert_eq!(t.ops[1].kind, OpKind::ExtractLane);
        assert_eq!(t.ops[2].kind, OpKind::StoreLane);
        assert!(t.ops[1].first_of_instr);
        assert!(!t.ops[2].first_of_instr);
        assert_eq!(t.instr_count(), 2); // load + pextrw
        assert_eq!(t.store_bytes(), 2);
    }

    #[test]
    fn alu_ops_evaluate_and_link_deps() {
        let (mut vm, mr) = vm_with(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a = vm.load(RegWidth::Sse128, mr);
        let b = vm.splat(RegWidth::Sse128, 10);
        let c = vm.adds(a, b);
        let d = vm.max(c, b);
        assert_eq!(vm.value(d).lanes(), &[11, 12, 13, 14, 15, 16, 17, 18]);
        let t = vm.trace();
        let add = &t.ops[2];
        assert_eq!(add.kind, OpKind::VAdds);
        assert_eq!(add.srcs[0], t.ops[0].dst.unwrap());
        assert_eq!(add.srcs[1], t.ops[1].dst.unwrap());
    }

    #[test]
    fn extract256_clobbers_source() {
        let mut mem = Mem::new();
        let vals: Vec<i16> = (0..32).collect();
        let mr = mem.alloc_from(&vals);
        let mut vm = Vm::tracing(mem);
        let z = vm.load(RegWidth::Avx512, mr);
        let lo = vm.extract256_clobber(z, 0);
        assert_eq!(vm.value(lo).lanes()[0], 0);
        // Source is now dead: reading it must panic.
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| vm.value(z)));
        assert!(res.is_err(), "clobbered zmm must not be readable");
    }

    #[test]
    fn extract256_reload_path_works() {
        let mut mem = Mem::new();
        let vals: Vec<i16> = (100..132).collect();
        let mr = mem.alloc_from(&vals);
        let mut vm = Vm::tracing(mem);
        let z = vm.load(RegWidth::Avx512, mr);
        let _lo = vm.extract256_clobber(z, 0);
        // Paper §5.2: reload with vmovdqa64, then take the upper half.
        let z2 = vm.load(RegWidth::Avx512, mr);
        let hi = vm.extract256_clobber(z2, 1);
        assert_eq!(vm.value(hi).lanes()[0], 116);
        let h = vm.trace().class_histogram();
        assert_eq!(h.load, 2);
        assert_eq!(h.store, 2); // the two extracts are movement-class
    }

    #[test]
    fn native_mode_records_nothing() {
        let mut mem = Mem::new();
        let mr = mem.alloc_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut vm = Vm::native(mem);
        let a = vm.load(RegWidth::Sse128, mr);
        let b = vm.adds(a, a);
        assert_eq!(vm.value(b).lanes(), &[2, 4, 6, 8, 10, 12, 14, 16]);
        assert!(vm.trace().is_empty());
    }

    #[test]
    fn shuffle_and_rotate_are_vec_alu() {
        let (mut vm, mr) = vm_with(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let a = vm.load(RegWidth::Sse128, mr);
        let t = [
            Some(1u8),
            Some(0),
            Some(3),
            Some(2),
            Some(5),
            Some(4),
            Some(7),
            Some(6),
        ];
        let s = vm.shuffle(a, &t);
        assert_eq!(vm.value(s).lanes(), &[1, 0, 3, 2, 5, 4, 7, 6]);
        let rr = vm.rotate_lanes_left(a, 2);
        assert_eq!(vm.value(rr).lanes(), &[2, 3, 4, 5, 6, 7, 0, 1]);
        for op in &vm.trace().ops[1..] {
            assert_eq!(op.kind.class(), OpClass::VecAlu);
        }
    }

    #[test]
    fn scalar_and_branch_uops() {
        let mut vm = Vm::tracing(Mem::new());
        vm.scalar_ops(3);
        vm.branch(true);
        vm.branch(false);
        let t = vm.trace();
        assert_eq!(t.len(), 5);
        assert!(t.ops[3].mispredict);
        assert!(!t.ops[4].mispredict);
    }
}
