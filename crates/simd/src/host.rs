//! Runtime host-CPU SIMD capability detection shared by every crate
//! that carries real `std::arch` kernels.
//!
//! The VM ([`crate::vm::Vm`]) models ISA widths abstractly; the native
//! kernels in `vran-arrange` and `vran-phy` instead dispatch on what
//! the *host* actually supports. This module centralizes that
//! detection so the feature-probe logic (and its always-true scalar
//! fallback) is written once: callers map [`HostIsa`] levels onto
//! their own kernel variants.

/// An x86 SIMD capability level the native kernels dispatch on,
/// ordered from least to most capable. On non-x86 targets only
/// [`HostIsa::Scalar`] is ever reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostIsa {
    /// Portable scalar code — always available, the dispatch floor.
    Scalar,
    /// SSE2 baseline x86-64 vectors (128-bit, no byte shuffle).
    Sse2,
    /// SSSE3 adds `pshufb` (in-register byte permute).
    Ssse3,
    /// AVX2 256-bit integer vectors (two 128-bit lanes).
    Avx2,
    /// AVX-512BW 512-bit vectors with full 16-bit permutes.
    Avx512bw,
}

impl HostIsa {
    /// Stable lowercase label for bench metrics and logs.
    pub fn name(self) -> &'static str {
        match self {
            HostIsa::Scalar => "scalar",
            HostIsa::Sse2 => "sse2",
            HostIsa::Ssse3 => "ssse3",
            HostIsa::Avx2 => "avx2",
            HostIsa::Avx512bw => "avx512bw",
        }
    }

    /// All levels in ascending capability order.
    pub fn all() -> [HostIsa; 5] {
        [
            HostIsa::Scalar,
            HostIsa::Sse2,
            HostIsa::Ssse3,
            HostIsa::Avx2,
            HostIsa::Avx512bw,
        ]
    }
}

use std::sync::atomic::{AtomicU8, Ordering};

/// Process-wide ISA ceiling: `u8::MAX` means "no ceiling", any other
/// value is the maximum [`HostIsa`] (by declaration order) that
/// [`has`] may report as available. Exists so robustness tests can
/// simulate a SIMD-less host on real hardware and exercise scalar
/// fallback paths end to end.
static ISA_CEILING: AtomicU8 = AtomicU8::new(u8::MAX);

fn isa_rank(isa: HostIsa) -> u8 {
    match isa {
        HostIsa::Scalar => 0,
        HostIsa::Sse2 => 1,
        HostIsa::Ssse3 => 2,
        HostIsa::Avx2 => 3,
        HostIsa::Avx512bw => 4,
    }
}

/// Cap every subsequent [`has`] answer at `ceiling` (`None` removes
/// the cap). `Scalar` always stays available. Affects the whole
/// process: dispatchers in `vran-phy` and `vran-arrange` will refuse
/// ISA levels above the ceiling exactly as if the CPU lacked them.
///
/// Intended for fault-injection and fallback tests; production code
/// should never call this. Tests that use it must not run concurrently
/// with tests that assume full host capability (use a dedicated
/// integration-test binary, which cargo runs in its own process).
pub fn set_isa_ceiling(ceiling: Option<HostIsa>) {
    let v = ceiling.map_or(u8::MAX, isa_rank);
    ISA_CEILING.store(v, Ordering::SeqCst);
}

/// The currently configured ceiling, if any.
pub fn isa_ceiling() -> Option<HostIsa> {
    let v = ISA_CEILING.load(Ordering::SeqCst);
    HostIsa::all().into_iter().find(|&i| isa_rank(i) == v)
}

/// Whether the running host supports `isa` (and the test ceiling, if
/// one is set, admits it).
pub fn has(isa: HostIsa) -> bool {
    if isa_rank(isa) > ISA_CEILING.load(Ordering::Relaxed) {
        return false;
    }
    detect(isa)
}

fn detect(isa: HostIsa) -> bool {
    match isa {
        HostIsa::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        HostIsa::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
        #[cfg(target_arch = "x86_64")]
        HostIsa::Ssse3 => std::arch::is_x86_feature_detected!("ssse3"),
        #[cfg(target_arch = "x86_64")]
        HostIsa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        HostIsa::Avx512bw => {
            std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512f")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The levels usable on this host, ascending; `Scalar` is always
/// first.
pub fn available() -> Vec<HostIsa> {
    HostIsa::all().into_iter().filter(|&i| has(i)).collect()
}

/// The most capable level the host supports (at worst `Scalar`).
pub fn best() -> HostIsa {
    *available().last().expect("scalar is always available")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available_and_first() {
        assert!(has(HostIsa::Scalar));
        assert_eq!(available()[0], HostIsa::Scalar);
    }

    #[test]
    fn available_is_ascending_and_distinct() {
        let avail = available();
        assert!(avail.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn best_is_the_last_available_level() {
        assert_eq!(best(), *available().last().unwrap());
        assert!(has(best()));
    }

    #[test]
    fn feature_implication_chain_holds() {
        // On real hardware SSSE3 implies SSE2 and AVX2 implies SSSE3;
        // the dispatchers rely on picking the max available level.
        if has(HostIsa::Ssse3) {
            assert!(has(HostIsa::Sse2));
        }
        if has(HostIsa::Avx2) {
            assert!(has(HostIsa::Ssse3));
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = HostIsa::all().iter().map(|i| i.name()).collect();
        assert_eq!(names.len(), HostIsa::all().len());
    }
}
