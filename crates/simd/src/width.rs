//! Register width model: SSE128 / AVX256 / AVX512.
//!
//! The paper evaluates every experiment at the three x86 vector register
//! widths (xmm / ymm / zmm). All kernels in this workspace are generic
//! over [`RegWidth`]; the lane type is fixed to `i16` because the OAI
//! turbo decoder (and its data arrangement) operates on 16-bit fixed
//! point LLRs — the paper's `pextrw` ("extract word") baseline moves
//! exactly one such lane per instruction.

/// Maximum number of `i16` lanes across all supported widths (zmm).
pub const MAX_LANES: usize = 32;

/// The three x86 SIMD register widths the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegWidth {
    /// 128-bit `xmm` registers (SSE2..SSE4.2 era). 8 × i16 lanes.
    Sse128,
    /// 256-bit `ymm` registers (AVX2). 16 × i16 lanes.
    Avx256,
    /// 512-bit `zmm` registers (AVX-512BW). 32 × i16 lanes.
    Avx512,
}

impl RegWidth {
    /// All widths in increasing order — iteration helper for sweeps.
    pub const ALL: [RegWidth; 3] = [RegWidth::Sse128, RegWidth::Avx256, RegWidth::Avx512];

    /// Register width in bits (128, 256 or 512).
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            RegWidth::Sse128 => 128,
            RegWidth::Avx256 => 256,
            RegWidth::Avx512 => 512,
        }
    }

    /// Register width in bytes (16, 32 or 64).
    #[inline]
    pub const fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// Number of `i16` lanes held by one register (8, 16 or 32).
    #[inline]
    pub const fn lanes(self) -> usize {
        (self.bits() / 16) as usize
    }

    /// Short display name used by figures and bench IDs.
    pub const fn name(self) -> &'static str {
        match self {
            RegWidth::Sse128 => "SSE128",
            RegWidth::Avx256 => "AVX256",
            RegWidth::Avx512 => "AVX512",
        }
    }

    /// The x86 register file name for this width.
    pub const fn reg_name(self) -> &'static str {
        match self {
            RegWidth::Sse128 => "xmm",
            RegWidth::Avx256 => "ymm",
            RegWidth::Avx512 => "zmm",
        }
    }

    /// Number of 128-bit halves/quarters ("sub-lanes" in x86 parlance).
    #[inline]
    pub const fn lanes128(self) -> usize {
        (self.bits() / 128) as usize
    }

    /// The next narrower width, if any. Used by the baseline data
    /// arrangement model: `vextracti128`/`vextracti32x8` step down one
    /// width level at a time (paper §5.2).
    pub const fn narrower(self) -> Option<RegWidth> {
        match self {
            RegWidth::Sse128 => None,
            RegWidth::Avx256 => Some(RegWidth::Sse128),
            RegWidth::Avx512 => Some(RegWidth::Avx256),
        }
    }
}

impl std::fmt::Display for RegWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_bytes_lanes_are_consistent() {
        for w in RegWidth::ALL {
            assert_eq!(w.bits(), w.bytes() * 8);
            assert_eq!(w.lanes(), (w.bytes() / 2) as usize);
            assert_eq!(w.lanes128() * 8, w.lanes());
        }
    }

    #[test]
    fn all_is_sorted_and_distinct() {
        assert!(RegWidth::ALL.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn narrower_chain_terminates_at_sse() {
        assert_eq!(RegWidth::Avx512.narrower(), Some(RegWidth::Avx256));
        assert_eq!(RegWidth::Avx256.narrower(), Some(RegWidth::Sse128));
        assert_eq!(RegWidth::Sse128.narrower(), None);
    }

    #[test]
    fn lane_counts_match_paper() {
        // Paper §4.2: "the data arrangement operations are 16 bits one
        // time and thus the data arrangement operation times is 8 for
        // 128 bits register", 16 for ymm, 32 for zmm.
        assert_eq!(RegWidth::Sse128.lanes(), 8);
        assert_eq!(RegWidth::Avx256.lanes(), 16);
        assert_eq!(RegWidth::Avx512.lanes(), 32);
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(RegWidth::Sse128.to_string(), "SSE128");
        assert_eq!(RegWidth::Avx512.reg_name(), "zmm");
    }
}
