//! # vran-simd — width-generic SIMD vector IR
//!
//! This crate provides the instruction-level substrate for the APCM
//! reproduction. Kernels (the data arrangement process, the max-log-MAP
//! turbo decoder inner loops, instruction-class microkernels) are written
//! once against a small virtual machine ([`vm::Vm`]) over abstract vector
//! registers, and can then be executed in two modes:
//!
//! * **native** — the operation semantics are evaluated directly on a
//!   portable lane model ([`value::VecVal`], `i16` lanes, 8/16/32 lanes for
//!   SSE128/AVX256/AVX512). This gives correct outputs for functional
//!   tests and end-to-end pipelines.
//! * **tracing** — in addition to evaluating, every architectural
//!   instruction is appended to a [`trace::Trace`] as one or more
//!   [`trace::MicroOp`]s carrying its op kind, SSA-style register
//!   dependencies, and the number of bytes it moves between the register
//!   file and L1. The trace is consumed by the `vran-uarch` port-level
//!   core simulator to produce the paper's top-down metrics.
//!
//! The split mirrors the paper's methodology: the same C code was both run
//! (for latency numbers) and profiled with VTune (for port/top-down
//! numbers). Here the same IR kernel is both evaluated and scheduled.
//!
//! ## Instruction model
//!
//! Instructions are classified per the paper's Figure 2 port model:
//!
//! | class | example intrinsics | ports |
//! |---|---|---|
//! | vector ALU | `_mm_adds_epi16`, `_mm_and_si128`, `_mm_shuffle_epi8` | P0, P1, P2 |
//! | scalar ALU | address arithmetic, loop counters | P0..P3 |
//! | load | `_mm_load_si128`, `vmovdqa64` | P4, P5 |
//! | store / movement | `pextrw` to memory, `_mm_store_si128` | P6, P7 |
//!
//! The mapping from [`trace::OpKind`] to ports and latencies lives in
//! `vran-uarch` so the port topology can be varied without touching
//! kernels.
//!
//! # Example
//!
//! ```
//! use vran_simd::{Mem, RegWidth, Vm};
//!
//! let mut mem = Mem::new();
//! let a = mem.alloc_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
//! let out = mem.alloc(8);
//!
//! let mut vm = Vm::tracing(mem);
//! let r = vm.load(RegWidth::Sse128, a);
//! let doubled = vm.adds(r, r);
//! vm.store(doubled, out);
//!
//! // native semantics…
//! assert_eq!(vm.mem().read(out), &[2, 4, 6, 8, 10, 12, 14, 16]);
//! // …and a µop trace for the simulator
//! let trace = vm.take_trace();
//! assert_eq!(trace.len(), 3);
//! assert_eq!(trace.store_bytes(), 16);
//! ```

pub mod host;
pub mod mem;
pub mod trace;
pub mod value;
pub mod vm;
pub mod width;

pub use host::HostIsa;
pub use mem::{Mem, MemRef};
pub use trace::{ClassHistogram, MicroOp, OpClass, OpKind, RegId, Trace};
pub use value::VecVal;
pub use vm::{VReg, Vm, VmMode};
pub use width::RegWidth;
