//! Flat `i16` memory model for the virtual machine.
//!
//! Addresses are in **elements** (i16 units), not bytes; the trace layer
//! converts to byte addresses (`addr * 2`) for the cache simulator. The
//! arrangement kernels allocate their input (interleaved S1/YP1/YP2
//! triples) and output (three segregated arrays) inside one [`Mem`], so
//! the cache model sees realistic address streams.

use crate::width::RegWidth;

/// A reference to `len` contiguous i16 elements starting at `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Start offset in elements.
    pub base: usize,
    /// Length in elements.
    pub len: usize,
}

impl MemRef {
    /// New region covering `[base, base+len)`.
    #[inline]
    pub fn new(base: usize, len: usize) -> Self {
        Self { base, len }
    }

    /// Sub-region at `offset` elements, `len` elements long.
    #[inline]
    pub fn slice(self, offset: usize, len: usize) -> Self {
        assert!(
            offset + len <= self.len,
            "sub-slice [{offset}, {}) escapes region of len {}",
            offset + len,
            self.len
        );
        Self {
            base: self.base + offset,
            len,
        }
    }

    /// Region holding exactly one register of `width` at `offset` elements.
    #[inline]
    pub fn reg_at(self, offset: usize, width: RegWidth) -> Self {
        self.slice(offset, width.lanes())
    }

    /// Byte address of the first element (for the cache model).
    #[inline]
    pub fn byte_addr(self) -> u64 {
        (self.base * 2) as u64
    }

    /// Size in bytes.
    #[inline]
    pub fn byte_len(self) -> u64 {
        (self.len * 2) as u64
    }
}

/// Flat element-addressed memory.
#[derive(Debug, Clone, Default)]
pub struct Mem {
    data: Vec<i16>,
}

impl Mem {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a zeroed region of `len` elements, returning its handle.
    pub fn alloc(&mut self, len: usize) -> MemRef {
        let base = self.data.len();
        self.data.resize(base + len, 0);
        MemRef { base, len }
    }

    /// Allocate a region initialized from `src`.
    pub fn alloc_from(&mut self, src: &[i16]) -> MemRef {
        let r = self.alloc(src.len());
        self.data[r.base..r.base + r.len].copy_from_slice(src);
        r
    }

    /// Read the region's contents.
    pub fn read(&self, r: MemRef) -> &[i16] {
        &self.data[r.base..r.base + r.len]
    }

    /// Mutable view of the region.
    pub fn write(&mut self, r: MemRef) -> &mut [i16] {
        &mut self.data[r.base..r.base + r.len]
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, addr: usize) -> i16 {
        self.data[addr]
    }

    /// Write one element.
    #[inline]
    pub fn set(&mut self, addr: usize, v: i16) {
        self.data[addr] = v;
    }

    /// Total allocated elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_regions_are_disjoint() {
        let mut m = Mem::new();
        let a = m.alloc(10);
        let b = m.alloc(6);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 10);
        m.write(a).fill(1);
        m.write(b).fill(2);
        assert!(m.read(a).iter().all(|&x| x == 1));
        assert!(m.read(b).iter().all(|&x| x == 2));
    }

    #[test]
    fn alloc_from_copies() {
        let mut m = Mem::new();
        let r = m.alloc_from(&[3, 1, 4, 1, 5]);
        assert_eq!(m.read(r), &[3, 1, 4, 1, 5]);
    }

    #[test]
    fn slice_and_reg_at() {
        let mut m = Mem::new();
        let r = m.alloc(64);
        let s = r.slice(16, 8);
        assert_eq!(s.base, 16);
        let reg = r.reg_at(32, RegWidth::Sse128);
        assert_eq!(reg.len, 8);
        assert_eq!(reg.base, 32);
        assert_eq!(reg.byte_addr(), 64);
        assert_eq!(reg.byte_len(), 16);
    }

    #[test]
    #[should_panic(expected = "escapes region")]
    fn slice_out_of_bounds_panics() {
        let r = MemRef::new(0, 8);
        let _ = r.slice(4, 8);
    }
}
