//! Portable lane-model vector values.
//!
//! [`VecVal`] evaluates the semantics of every IR instruction on plain
//! `i16` lanes. It is deliberately boring: correctness of the PHY
//! pipeline and of both arrangement kernels is established against this
//! model, so it must be an obviously-right transliteration of the Intel
//! intrinsic semantics the OAI code uses (`_mm_adds_epi16`,
//! `_mm_subs_epi16`, `_mm_max_epi16`, `_mm_and_si128`, `_mm_or_si128`,
//! `_mm_shuffle_epi8`-style lane shuffles, …).

use crate::width::{RegWidth, MAX_LANES};

/// A vector register value: `width.lanes()` live `i16` lanes.
///
/// Stored inline (no heap) so the native executor stays allocation-free
/// in hot loops, per the workspace performance guidelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecVal {
    lanes: [i16; MAX_LANES],
    width: RegWidth,
}

impl VecVal {
    /// All-zero register of the given width.
    #[inline]
    pub fn zero(width: RegWidth) -> Self {
        Self {
            lanes: [0; MAX_LANES],
            width,
        }
    }

    /// Broadcast a scalar into every lane (`_mm_set1_epi16`).
    #[inline]
    pub fn splat(width: RegWidth, v: i16) -> Self {
        let mut lanes = [0; MAX_LANES];
        lanes[..width.lanes()].fill(v);
        Self { lanes, width }
    }

    /// Build from a slice; `src.len()` must equal `width.lanes()`.
    pub fn from_lanes(width: RegWidth, src: &[i16]) -> Self {
        assert_eq!(
            src.len(),
            width.lanes(),
            "lane count mismatch: got {}, width {} needs {}",
            src.len(),
            width,
            width.lanes()
        );
        let mut lanes = [0; MAX_LANES];
        lanes[..src.len()].copy_from_slice(src);
        Self { lanes, width }
    }

    /// The register width of this value.
    #[inline]
    pub fn width(&self) -> RegWidth {
        self.width
    }

    /// Live lanes as a slice.
    #[inline]
    pub fn lanes(&self) -> &[i16] {
        &self.lanes[..self.width.lanes()]
    }

    /// Read a single lane (`_mm_extract_epi16` evaluation).
    #[inline]
    pub fn lane(&self, i: usize) -> i16 {
        assert!(
            i < self.width.lanes(),
            "lane {i} out of range for {}",
            self.width
        );
        self.lanes[i]
    }

    /// Write a single lane (used only by test scaffolding).
    #[inline]
    pub fn set_lane(&mut self, i: usize, v: i16) {
        assert!(
            i < self.width.lanes(),
            "lane {i} out of range for {}",
            self.width
        );
        self.lanes[i] = v;
    }

    #[inline]
    fn zip(self, rhs: Self, f: impl Fn(i16, i16) -> i16) -> Self {
        assert_eq!(self.width, rhs.width, "width mismatch in vector op");
        let mut out = Self::zero(self.width);
        for i in 0..self.width.lanes() {
            out.lanes[i] = f(self.lanes[i], rhs.lanes[i]);
        }
        out
    }

    /// Saturating lane-wise add (`_mm_adds_epi16`).
    #[inline]
    pub fn adds(self, rhs: Self) -> Self {
        self.zip(rhs, i16::saturating_add)
    }

    /// Saturating lane-wise subtract (`_mm_subs_epi16`).
    #[inline]
    pub fn subs(self, rhs: Self) -> Self {
        self.zip(rhs, i16::saturating_sub)
    }

    /// Lane-wise signed maximum (`_mm_max_epi16`).
    #[inline]
    pub fn max(self, rhs: Self) -> Self {
        self.zip(rhs, i16::max)
    }

    /// Lane-wise signed minimum (`_mm_min_epi16`).
    #[inline]
    pub fn min(self, rhs: Self) -> Self {
        self.zip(rhs, i16::min)
    }

    /// Bitwise AND (`_mm_and_si128` / `vpand` / `vpandd`).
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR (`_mm_or_si128` / `vpor` / `vpord`).
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR (`_mm_xor_si128`).
    #[inline]
    pub fn xor(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| a ^ b)
    }

    /// Bitwise AND-NOT: `(!self) & rhs` (`_mm_andnot_si128` operand order).
    #[inline]
    pub fn andnot(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| !a & b)
    }

    /// Wrapping lane-wise add (`_mm_add_epi16`).
    #[inline]
    pub fn add_wrap(self, rhs: Self) -> Self {
        self.zip(rhs, i16::wrapping_add)
    }

    /// Lane-wise arithmetic shift right by an immediate (`_mm_srai_epi16`).
    #[inline]
    pub fn srai(self, imm: u32) -> Self {
        let sh = imm.min(15);
        let mut out = Self::zero(self.width);
        for i in 0..self.width.lanes() {
            out.lanes[i] = self.lanes[i] >> sh;
        }
        out
    }

    /// Lane-wise logical shift left by an immediate (`_mm_slli_epi16`).
    #[inline]
    pub fn slli(self, imm: u32) -> Self {
        let mut out = Self::zero(self.width);
        if imm < 16 {
            for i in 0..self.width.lanes() {
                out.lanes[i] = ((self.lanes[i] as u16) << imm) as i16;
            }
        }
        out
    }

    /// Arbitrary full-width lane permutation with zeroing.
    ///
    /// `table[i]` selects the source lane written to output lane `i`;
    /// `None` zeroes the lane. Models `pshufb`-family shuffles (xmm) and
    /// `vpermw` (ymm/zmm) — a single-instruction, vector-ALU-port lane
    /// rearrangement. This is the workhorse of the natural-order APCM
    /// variant (see `vran-arrange`).
    pub fn shuffle(self, table: &[Option<u8>]) -> Self {
        assert_eq!(
            table.len(),
            self.width.lanes(),
            "shuffle table length mismatch"
        );
        let mut out = Self::zero(self.width);
        for (i, sel) in table.iter().enumerate() {
            out.lanes[i] = match sel {
                Some(s) => {
                    assert!(
                        (*s as usize) < self.width.lanes(),
                        "shuffle index out of range"
                    );
                    self.lanes[*s as usize]
                }
                None => 0,
            };
        }
        out
    }

    /// Rotate lanes left by `n` positions (lane 0 receives old lane `n`).
    ///
    /// The paper's Figure 10 step 4 "left rotate 16/32 bits" — expressed
    /// on real hardware via the shifted-load mimic of Figure 12, but the
    /// value semantics are a lane rotation.
    pub fn rotate_lanes_left(self, n: usize) -> Self {
        let l = self.width.lanes();
        let n = n % l;
        let mut out = Self::zero(self.width);
        for i in 0..l {
            out.lanes[i] = self.lanes[(i + n) % l];
        }
        out
    }

    /// Extract one 128-bit half/quarter as a fresh `Sse128` value
    /// (`vextracti128` for ymm, composition for zmm).
    pub fn extract128(self, idx: usize) -> VecVal {
        assert!(
            idx < self.width.lanes128(),
            "128-bit lane {idx} out of range for {}",
            self.width
        );
        let mut out = VecVal::zero(RegWidth::Sse128);
        out.lanes[..8].copy_from_slice(&self.lanes[idx * 8..idx * 8 + 8]);
        out
    }

    /// Extract a 256-bit half of a zmm register (`vextracti32x8`).
    pub fn extract256(self, idx: usize) -> VecVal {
        assert_eq!(
            self.width,
            RegWidth::Avx512,
            "extract256 requires a zmm source"
        );
        assert!(idx < 2);
        let mut out = VecVal::zero(RegWidth::Avx256);
        out.lanes[..16].copy_from_slice(&self.lanes[idx * 16..idx * 16 + 16]);
        out
    }

    /// Lane-wise compare-equal: all-ones lane on equality (`_mm_cmpeq_epi16`).
    #[inline]
    pub fn cmpeq(self, rhs: Self) -> Self {
        self.zip(rhs, |a, b| if a == b { -1 } else { 0 })
    }

    /// Horizontal maximum over live lanes (helper for decoder
    /// normalization checks; not an x86 single instruction).
    pub fn hmax(&self) -> i16 {
        self.lanes().iter().copied().max().expect("non-empty lanes")
    }
}

impl std::fmt::Display for VecVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[", self.width.reg_name())?;
        for (i, l) in self.lanes().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[i16]) -> VecVal {
        VecVal::from_lanes(RegWidth::Sse128, vals)
    }

    #[test]
    fn adds_saturates() {
        let a = v(&[i16::MAX, i16::MIN, 100, -100, 0, 1, -1, 32000]);
        let b = v(&[1, -1, 100, -100, 0, 1, -1, 1000]);
        let c = a.adds(b);
        assert_eq!(
            c.lanes(),
            &[i16::MAX, i16::MIN, 200, -200, 0, 2, -2, i16::MAX]
        );
    }

    #[test]
    fn subs_saturates() {
        let a = v(&[i16::MIN, i16::MAX, 0, 0, 5, -5, 7, -7]);
        let b = v(&[1, -1, i16::MIN, i16::MAX, 2, 2, 7, -7]);
        let c = a.subs(b);
        // 0 - i16::MIN saturates to i16::MAX (note: -MIN overflows).
        assert_eq!(
            c.lanes(),
            &[i16::MIN, i16::MAX, i16::MAX, -i16::MAX, 3, -7, 0, 0]
        );
    }

    #[test]
    fn max_min_are_lanewise() {
        let a = v(&[1, 5, -3, 0, 9, -9, 2, 2]);
        let b = v(&[2, 4, -4, 0, -9, 9, 2, 3]);
        assert_eq!(a.max(b).lanes(), &[2, 5, -3, 0, 9, 9, 2, 3]);
        assert_eq!(a.min(b).lanes(), &[1, 4, -4, 0, -9, -9, 2, 2]);
    }

    #[test]
    fn bitwise_ops_match_scalar() {
        let a = v(&[0x0f0f, 0x00ff, -1, 0, 0x1234, 0x4321, 0x7fff, i16::MIN]);
        let b = v(&[0x00ff, 0x0f0f, 0x5555, -1, 0x4321, 0x1234, 1, 1]);
        for i in 0..8 {
            assert_eq!(a.and(b).lane(i), a.lane(i) & b.lane(i));
            assert_eq!(a.or(b).lane(i), a.lane(i) | b.lane(i));
            assert_eq!(a.xor(b).lane(i), a.lane(i) ^ b.lane(i));
            assert_eq!(a.andnot(b).lane(i), !a.lane(i) & b.lane(i));
        }
    }

    #[test]
    fn shuffle_moves_and_zeroes() {
        let a = v(&[10, 11, 12, 13, 14, 15, 16, 17]);
        let t = [
            Some(7u8),
            None,
            Some(0),
            Some(0),
            None,
            Some(3),
            Some(6),
            Some(1),
        ];
        let s = a.shuffle(&t);
        assert_eq!(s.lanes(), &[17, 0, 10, 10, 0, 13, 16, 11]);
    }

    #[test]
    fn rotate_lanes_left_wraps() {
        let a = v(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(a.rotate_lanes_left(1).lanes(), &[1, 2, 3, 4, 5, 6, 7, 0]);
        assert_eq!(a.rotate_lanes_left(2).lanes(), &[2, 3, 4, 5, 6, 7, 0, 1]);
        assert_eq!(a.rotate_lanes_left(8).lanes(), a.lanes());
    }

    #[test]
    fn extract_halves() {
        let mut lanes = [0i16; 16];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = i as i16;
        }
        let y = VecVal::from_lanes(RegWidth::Avx256, &lanes);
        assert_eq!(y.extract128(0).lanes(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(y.extract128(1).lanes(), &[8, 9, 10, 11, 12, 13, 14, 15]);

        let mut zl = [0i16; 32];
        for (i, l) in zl.iter_mut().enumerate() {
            *l = i as i16;
        }
        let z = VecVal::from_lanes(RegWidth::Avx512, &zl);
        assert_eq!(z.extract256(1).lanes()[0], 16);
        assert_eq!(z.extract256(0).lanes()[15], 15);
        assert_eq!(z.extract128(3).lanes(), &[24, 25, 26, 27, 28, 29, 30, 31]);
    }

    #[test]
    fn splat_fills_live_lanes_only() {
        let s = VecVal::splat(RegWidth::Avx256, -7);
        assert_eq!(s.lanes().len(), 16);
        assert!(s.lanes().iter().all(|&x| x == -7));
    }

    #[test]
    fn shifts_match_scalar() {
        let a = v(&[-32768, -1, 1, 2, 4, 1024, -1024, 12345]);
        for imm in 0..4 {
            for i in 0..8 {
                assert_eq!(a.srai(imm).lane(i), a.lane(i) >> imm);
                assert_eq!(a.slli(imm).lane(i), ((a.lane(i) as u16) << imm) as i16);
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mixed_width_ops_panic() {
        let a = VecVal::splat(RegWidth::Sse128, 1);
        let b = VecVal::splat(RegWidth::Avx256, 1);
        let _ = a.adds(b);
    }

    #[test]
    fn cmpeq_produces_masks() {
        let a = v(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let b = v(&[1, 0, 3, 0, 5, 0, 7, 0]);
        assert_eq!(a.cmpeq(b).lanes(), &[-1, 0, -1, 0, -1, 0, -1, 0]);
    }
}
