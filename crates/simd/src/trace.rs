//! Micro-op traces.
//!
//! Tracing execution lowers every architectural instruction the kernel
//! issues into one or more [`MicroOp`]s. Dependencies are expressed in
//! SSA form: every µop producing a value allocates a fresh [`RegId`];
//! consumers name their source ids. The `vran-uarch` scheduler uses these
//! ids to decide readiness, the [`OpKind`] to pick issue ports and
//! latency, and `bytes`/`addr` for register↔L1 bandwidth and cache
//! accounting.

/// SSA value id produced by a µop.
pub type RegId = u32;

/// Sentinel meaning "no source in this slot".
pub const NO_SRC: RegId = u32::MAX;

/// Broad port class of an operation, matching the paper's Figure 2
/// decomposition of the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// SIMD calculation: issues on the vector ALU ports (paper: P0, P1, P2).
    VecAlu,
    /// Scalar ALU / address arithmetic (paper: P0..P3).
    ScalarAlu,
    /// Memory read into a register (paper: P4, P5).
    Load,
    /// Memory write / SIMD data movement to memory (paper: P6, P7).
    Store,
    /// Control flow (shares scalar ports; may trigger bad speculation).
    Branch,
}

/// Fine-grained operation kind — one per architectural instruction the
/// kernels use. The split matters because the paper reports per-
/// instruction IPC (Fig 7: `_mm_adds`, `_mm_subs`, `_mm_max`,
/// `_mm_extract`) and because widening penalties differ per kind
/// (§5.2: `vextracti128`, `vextracti32x8`, `vmovdqa64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    // --- vector ALU (SIMD calculation) ---
    /// `_mm_adds_epi16` — saturating add.
    VAdds,
    /// `_mm_subs_epi16` — saturating subtract.
    VSubs,
    /// `_mm_max_epi16` — lane max.
    VMax,
    /// `_mm_min_epi16` — lane min.
    VMin,
    /// `_mm_add_epi16` — wrapping add.
    VAdd,
    /// `vpand`/`vpandd` — bitwise AND (APCM filtering).
    VAnd,
    /// `vpor`/`vpord` — bitwise OR (APCM combination).
    VOr,
    /// `_mm_xor_si128`.
    VXor,
    /// `_mm_andnot_si128`.
    VAndnot,
    /// `_mm_srai_epi16` — arithmetic shift right.
    VSrai,
    /// `_mm_slli_epi16` — logical shift left.
    VSlli,
    /// `pshufb`/`vpermw` — full lane shuffle (APCM congregation).
    VShuffle,
    /// `_mm_cmpeq_epi16`.
    VCmpEq,
    /// `_mm_set1_epi16` materialization.
    VBroadcast,

    // --- data movement ---
    /// Full-register aligned load (`movdqa`/`vmovdqa`/`vmovdqa64`).
    VLoad,
    /// `vpbroadcastw m16`: load one 16-bit element and replicate it to
    /// every lane (the γ phase of the SIMD decoder).
    VBroadcastLoad,
    /// Full-register aligned store.
    VStore,
    /// `pextrw`: move one 16-bit lane out of a vector register. With a
    /// memory destination this expands to [`OpKind::ExtractLane`] +
    /// [`OpKind::StoreLane`] µops.
    ExtractLane,
    /// The 2-byte store half of a `pextrw`-to-memory.
    StoreLane,
    /// `vextracti128`: move the upper xmm of a ymm down (paper §5.2 ymm
    /// penalty).
    Extract128,
    /// `vextracti32x8`: move a 256-bit half of a zmm down, clobbering the
    /// upper half (paper §5.2 zmm penalty: forces a reload via
    /// [`OpKind::VLoad`]).
    Extract256,

    // --- scalar ---
    /// Address arithmetic / loop bookkeeping.
    SAlu,
    /// Conditional branch.
    SBranch,
}

impl OpKind {
    /// The port class this kind issues to under the paper's model.
    ///
    /// Note the deliberate modeling decision, documented in DESIGN.md:
    /// the paper treats *every* SIMD data-movement instruction — the
    /// extracts included — as contending for the movement (load/store)
    /// ports, and that contention is precisely the mechanism APCM
    /// sidesteps. We therefore class `ExtractLane`, `Extract128` and
    /// `Extract256` as `Store`-class.
    pub fn class(self) -> OpClass {
        use OpKind::*;
        match self {
            VAdds | VSubs | VMax | VMin | VAdd | VAnd | VOr | VXor | VAndnot | VSrai | VSlli
            | VShuffle | VCmpEq | VBroadcast => OpClass::VecAlu,
            VLoad | VBroadcastLoad => OpClass::Load,
            VStore | ExtractLane | StoreLane | Extract128 | Extract256 => OpClass::Store,
            SAlu => OpClass::ScalarAlu,
            SBranch => OpClass::Branch,
        }
    }

    /// Human-readable mnemonic (used in reports and bench IDs).
    pub fn mnemonic(self) -> &'static str {
        use OpKind::*;
        match self {
            VAdds => "padds",
            VSubs => "psubs",
            VMax => "pmaxsw",
            VMin => "pminsw",
            VAdd => "paddw",
            VAnd => "vpand",
            VOr => "vpor",
            VXor => "vpxor",
            VAndnot => "vpandn",
            VSrai => "psraw",
            VSlli => "psllw",
            VShuffle => "vpermw",
            VCmpEq => "pcmpeqw",
            VBroadcast => "vpbroadcastw",
            VLoad => "vmovdqa(load)",
            VBroadcastLoad => "vpbroadcastw(mem)",
            VStore => "vmovdqa(store)",
            ExtractLane => "pextrw",
            StoreLane => "mov16(store)",
            Extract128 => "vextracti128",
            Extract256 => "vextracti32x8",
            SAlu => "lea/add",
            SBranch => "jcc",
        }
    }
}

/// One micro-operation in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Operation kind (determines ports + latency downstream).
    pub kind: OpKind,
    /// Destination SSA id, if the op produces a register value.
    pub dst: Option<RegId>,
    /// Source SSA ids; unused slots hold [`NO_SRC`].
    pub srcs: [RegId; 3],
    /// Bytes moved between the register file and L1 (loads/stores only).
    pub bytes: u16,
    /// Byte address touched (loads/stores only) for the cache model.
    pub addr: Option<u64>,
    /// True on the first µop of an architectural instruction; IPC in the
    /// paper's figures counts instructions, while slot accounting counts
    /// µops.
    pub first_of_instr: bool,
    /// For `SBranch`: whether this dynamic instance mispredicts.
    pub mispredict: bool,
}

impl MicroOp {
    /// Iterate over the real (non-sentinel) sources.
    #[inline]
    pub fn sources(&self) -> impl Iterator<Item = RegId> + '_ {
        self.srcs.iter().copied().filter(|&s| s != NO_SRC)
    }
}

/// A recorded µop stream plus summary counters.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The µops in program order.
    pub ops: Vec<MicroOp>,
    next_reg: RegId,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh SSA id.
    pub fn fresh_reg(&mut self) -> RegId {
        let r = self.next_reg;
        self.next_reg = self.next_reg.checked_add(1).expect("SSA id overflow");
        r
    }

    /// Append a µop.
    pub fn push(&mut self, op: MicroOp) {
        self.ops.push(op);
    }

    /// Number of µops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no µops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of architectural instructions (for IPC).
    pub fn instr_count(&self) -> usize {
        self.ops.iter().filter(|o| o.first_of_instr).count()
    }

    /// µop count per class.
    pub fn class_histogram(&self) -> ClassHistogram {
        let mut h = ClassHistogram::default();
        for op in &self.ops {
            match op.kind.class() {
                OpClass::VecAlu => h.vec_alu += 1,
                OpClass::ScalarAlu => h.scalar_alu += 1,
                OpClass::Load => h.load += 1,
                OpClass::Store => h.store += 1,
                OpClass::Branch => h.branch += 1,
            }
        }
        h
    }

    /// Total bytes moved register→L1 (stores).
    pub fn store_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind.class(), OpClass::Store))
            .map(|o| o.bytes as u64)
            .sum()
    }

    /// Total bytes moved L1→register (loads).
    pub fn load_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind.class(), OpClass::Load))
            .map(|o| o.bytes as u64)
            .sum()
    }

    /// Render the first `limit` µops as a readable listing (mnemonic,
    /// SSA destination/sources, memory operand) — a disassembly view
    /// for debugging kernels and inspecting what the simulator will
    /// schedule.
    pub fn disassemble(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, op) in self.ops.iter().take(limit).enumerate() {
            let cont = if op.first_of_instr { ' ' } else { '+' };
            let _ = write!(out, "{i:>6}{cont} {:<18}", op.kind.mnemonic());
            if let Some(d) = op.dst {
                let _ = write!(out, " v{d:<5}");
            } else {
                let _ = write!(out, "       ");
            }
            let srcs: Vec<String> = op.sources().map(|s| format!("v{s}")).collect();
            if !srcs.is_empty() {
                let _ = write!(out, " ← {}", srcs.join(", "));
            }
            if let Some(a) = op.addr {
                let _ = write!(out, "  [0x{a:x}; {}B]", op.bytes);
            }
            if op.mispredict {
                let _ = write!(out, "  (mispredict)");
            }
            let _ = writeln!(out);
        }
        if self.ops.len() > limit {
            let _ = writeln!(out, "  … {} more µops", self.ops.len() - limit);
        }
        out
    }

    /// Append all µops of `other`, remapping its SSA ids above ours so
    /// traces of consecutive kernels can be concatenated safely.
    pub fn extend_remapped(&mut self, other: &Trace) {
        let offset = self.next_reg;
        let remap = |r: RegId| if r == NO_SRC { NO_SRC } else { r + offset };
        for op in &other.ops {
            let mut o = *op;
            o.dst = o.dst.map(remap);
            for s in &mut o.srcs {
                *s = remap(*s);
            }
            self.ops.push(o);
        }
        self.next_reg += other.next_reg;
    }
}

/// Per-class µop counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassHistogram {
    /// Vector-ALU µops.
    pub vec_alu: u64,
    /// Scalar-ALU µops.
    pub scalar_alu: u64,
    /// Load µops.
    pub load: u64,
    /// Store/movement µops.
    pub store: u64,
    /// Branch µops.
    pub branch: u64,
}

impl ClassHistogram {
    /// Total µops.
    pub fn total(&self) -> u64 {
        self.vec_alu + self.scalar_alu + self.load + self.store + self.branch
    }

    /// Fraction of µops that are data movement (load + store).
    pub fn movement_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.load + self.store) as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(kind: OpKind, dst: Option<RegId>, srcs: [RegId; 3], first: bool) -> MicroOp {
        MicroOp {
            kind,
            dst,
            srcs,
            bytes: 0,
            addr: None,
            first_of_instr: first,
            mispredict: false,
        }
    }

    #[test]
    fn fresh_regs_are_unique() {
        let mut t = Trace::new();
        let a = t.fresh_reg();
        let b = t.fresh_reg();
        assert_ne!(a, b);
    }

    #[test]
    fn instr_count_counts_first_uops() {
        let mut t = Trace::new();
        t.push(mk(OpKind::ExtractLane, Some(0), [NO_SRC; 3], true));
        t.push(mk(OpKind::StoreLane, None, [0, NO_SRC, NO_SRC], false));
        t.push(mk(OpKind::VAdds, Some(1), [0, 0, NO_SRC], true));
        assert_eq!(t.len(), 3);
        assert_eq!(t.instr_count(), 2);
    }

    #[test]
    fn histogram_classifies() {
        let mut t = Trace::new();
        t.push(mk(OpKind::VAnd, Some(0), [NO_SRC; 3], true));
        t.push(mk(OpKind::VOr, Some(1), [0, NO_SRC, NO_SRC], true));
        t.push(mk(OpKind::VLoad, Some(2), [NO_SRC; 3], true));
        t.push(mk(OpKind::VStore, None, [1, NO_SRC, NO_SRC], true));
        t.push(mk(OpKind::SAlu, None, [NO_SRC; 3], true));
        let h = t.class_histogram();
        assert_eq!(h.vec_alu, 2);
        assert_eq!(h.load, 1);
        assert_eq!(h.store, 1);
        assert_eq!(h.scalar_alu, 1);
        assert_eq!(h.total(), 5);
        assert!((h.movement_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn extract_kinds_are_store_class() {
        // The crux of the paper's argument: extracts contend on the
        // movement ports, not the ALU ports.
        assert_eq!(OpKind::ExtractLane.class(), OpClass::Store);
        assert_eq!(OpKind::Extract128.class(), OpClass::Store);
        assert_eq!(OpKind::Extract256.class(), OpClass::Store);
        assert_eq!(OpKind::VAnd.class(), OpClass::VecAlu);
        assert_eq!(OpKind::VShuffle.class(), OpClass::VecAlu);
    }

    #[test]
    fn extend_remapped_keeps_deps_internal() {
        let mut a = Trace::new();
        let r0 = a.fresh_reg();
        a.push(mk(OpKind::VLoad, Some(r0), [NO_SRC; 3], true));

        let mut b = Trace::new();
        let s0 = b.fresh_reg();
        b.push(mk(OpKind::VLoad, Some(s0), [NO_SRC; 3], true));
        b.push(mk(OpKind::VStore, None, [s0, NO_SRC, NO_SRC], true));

        a.extend_remapped(&b);
        assert_eq!(a.len(), 3);
        // b's load now produces id 1 (offset by a's next_reg == 1).
        assert_eq!(a.ops[1].dst, Some(1));
        assert_eq!(a.ops[2].srcs[0], 1);
    }

    #[test]
    fn disassembly_is_readable() {
        let mut t = Trace::new();
        let mut ld = mk(OpKind::VLoad, Some(0), [NO_SRC; 3], true);
        ld.bytes = 16;
        ld.addr = Some(0x40);
        t.push(ld);
        t.push(mk(OpKind::VAdds, Some(1), [0, 0, NO_SRC], true));
        t.push(mk(OpKind::StoreLane, None, [1, NO_SRC, NO_SRC], false));
        let dis = t.disassemble(10);
        assert!(dis.contains("vmovdqa(load)"));
        assert!(dis.contains("v1"));
        assert!(dis.contains("← v0, v0"));
        assert!(dis.contains("[0x40; 16B]"));
        // continuation µop marked
        assert!(dis.lines().nth(2).unwrap().starts_with("     2+"));
        // truncation notice
        let short = t.disassemble(1);
        assert!(short.contains("2 more µops"));
    }

    #[test]
    fn byte_accounting() {
        let mut t = Trace::new();
        let mut load = mk(OpKind::VLoad, Some(0), [NO_SRC; 3], true);
        load.bytes = 16;
        let mut st = mk(OpKind::StoreLane, None, [0, NO_SRC, NO_SRC], false);
        st.bytes = 2;
        t.push(load);
        t.push(st);
        assert_eq!(t.load_bytes(), 16);
        assert_eq!(t.store_bytes(), 2);
    }
}
