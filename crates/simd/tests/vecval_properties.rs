//! Property tests: the lane model must match scalar `i16` semantics
//! exactly for every operation the kernels rely on — this is the
//! foundation of the bit-exactness contract between the scalar and
//! SIMD decoders.

use vran_simd::{Mem, RegWidth, VecVal, Vm};
use vran_util::proptest::prelude::*;

fn lanes_strategy(w: RegWidth) -> impl Strategy<Value = Vec<i16>> {
    prop::collection::vec(any::<i16>(), w.lanes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn binary_ops_match_scalar(a in lanes_strategy(RegWidth::Sse128), b in lanes_strategy(RegWidth::Sse128)) {
        let va = VecVal::from_lanes(RegWidth::Sse128, &a);
        let vb = VecVal::from_lanes(RegWidth::Sse128, &b);
        for i in 0..8 {
            prop_assert_eq!(va.adds(vb).lane(i), a[i].saturating_add(b[i]));
            prop_assert_eq!(va.subs(vb).lane(i), a[i].saturating_sub(b[i]));
            prop_assert_eq!(va.max(vb).lane(i), a[i].max(b[i]));
            prop_assert_eq!(va.min(vb).lane(i), a[i].min(b[i]));
            prop_assert_eq!(va.add_wrap(vb).lane(i), a[i].wrapping_add(b[i]));
            prop_assert_eq!(va.and(vb).lane(i), a[i] & b[i]);
            prop_assert_eq!(va.or(vb).lane(i), a[i] | b[i]);
            prop_assert_eq!(va.xor(vb).lane(i), a[i] ^ b[i]);
            prop_assert_eq!(va.andnot(vb).lane(i), !a[i] & b[i]);
            prop_assert_eq!(va.cmpeq(vb).lane(i), if a[i] == b[i] { -1 } else { 0 });
        }
    }

    #[test]
    fn shifts_match_scalar(a in lanes_strategy(RegWidth::Avx256), imm in 0u32..16) {
        let v = VecVal::from_lanes(RegWidth::Avx256, &a);
        for (i, &ai) in a.iter().enumerate().take(16) {
            prop_assert_eq!(v.srai(imm).lane(i), ai >> imm);
            prop_assert_eq!(v.slli(imm).lane(i), ((ai as u16) << imm) as i16);
        }
    }

    #[test]
    fn rotate_composition(a in lanes_strategy(RegWidth::Sse128), n in 0usize..16, m in 0usize..16) {
        let v = VecVal::from_lanes(RegWidth::Sse128, &a);
        let lhs = v.rotate_lanes_left(n).rotate_lanes_left(m);
        let rhs = v.rotate_lanes_left((n + m) % 8);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn shuffle_identity_and_inverse(a in lanes_strategy(RegWidth::Sse128), perm_seed in any::<u64>()) {
        let v = VecVal::from_lanes(RegWidth::Sse128, &a);
        // identity
        let id: Vec<Option<u8>> = (0..8).map(|i| Some(i as u8)).collect();
        prop_assert_eq!(v.shuffle(&id), v);
        // a random permutation then its inverse restores the value
        let mut p: Vec<u8> = (0..8).collect();
        let mut s = perm_seed | 1;
        for i in (1..8).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.swap(i, (s >> 33) as usize % (i + 1));
        }
        let fwd: Vec<Option<u8>> = p.iter().map(|&x| Some(x)).collect();
        let mut inv = [0u8; 8];
        for (i, &x) in p.iter().enumerate() {
            inv[x as usize] = i as u8;
        }
        let back: Vec<Option<u8>> = inv.iter().map(|&x| Some(x)).collect();
        prop_assert_eq!(v.shuffle(&fwd).shuffle(&back), v);
    }

    #[test]
    fn extract_halves_partition(a in lanes_strategy(RegWidth::Avx512)) {
        let z = VecVal::from_lanes(RegWidth::Avx512, &a);
        let mut reassembled = Vec::new();
        for q in 0..4 {
            reassembled.extend_from_slice(z.extract128(q).lanes());
        }
        prop_assert_eq!(reassembled, a.clone());
        let mut halves = Vec::new();
        for h in 0..2 {
            halves.extend_from_slice(z.extract256(h).lanes());
        }
        prop_assert_eq!(halves, a);
    }

    #[test]
    fn vm_native_and_tracing_agree(vals in prop::collection::vec(any::<i16>(), 16)) {
        let run = |tracing: bool| {
            let mut mem = Mem::new();
            let a = mem.alloc_from(&vals[..8]);
            let b = mem.alloc_from(&vals[8..]);
            let out = mem.alloc(8);
            let mut vm = if tracing { Vm::tracing(mem) } else { Vm::native(mem) };
            let ra = vm.load(RegWidth::Sse128, a);
            let rb = vm.load(RegWidth::Sse128, b);
            let s = vm.adds(ra, rb);
            let m = vm.max(s, ra);
            let r = vm.rotate_lanes_left(m, 3);
            vm.store(r, out);
            vm.mem().read(out).to_vec()
        };
        prop_assert_eq!(run(false), run(true));
    }

    #[test]
    fn trace_dependencies_reference_earlier_ops(vals in prop::collection::vec(any::<i16>(), 8)) {
        let mut mem = Mem::new();
        let a = mem.alloc_from(&vals);
        let mut vm = Vm::tracing(mem);
        let r = vm.load(RegWidth::Sse128, a);
        let x = vm.adds(r, r);
        let y = vm.subs(x, r);
        vm.extract_store(y, 0, a.base);
        let t = vm.take_trace();
        // SSA sanity: every source id was produced by an earlier op
        let mut produced = std::collections::HashSet::new();
        for op in &t.ops {
            for s in op.sources() {
                prop_assert!(produced.contains(&s), "use before def: {s}");
            }
            if let Some(d) = op.dst {
                produced.insert(d);
            }
        }
    }
}
