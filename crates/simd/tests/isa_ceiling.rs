//! The ISA-ceiling test hook lives in its own integration binary so
//! masking host capabilities cannot race the crate's unit tests
//! (cargo gives each integration test binary its own process).

use vran_simd::host::{self, HostIsa};

#[test]
fn ceiling_masks_and_restores_host_capabilities() {
    // Unrestricted baseline.
    assert!(host::isa_ceiling().is_none());
    let native_best = host::best();

    // Clamp to scalar: every vector level must vanish.
    host::set_isa_ceiling(Some(HostIsa::Scalar));
    assert_eq!(host::isa_ceiling(), Some(HostIsa::Scalar));
    assert_eq!(host::best(), HostIsa::Scalar);
    assert_eq!(host::available(), vec![HostIsa::Scalar]);
    assert!(!host::has(HostIsa::Sse2));
    assert!(!host::has(HostIsa::Avx512bw));
    assert!(host::has(HostIsa::Scalar));

    // An intermediate ceiling admits levels up to and including it
    // (subject to what the CPU really has).
    host::set_isa_ceiling(Some(HostIsa::Ssse3));
    assert!(!host::has(HostIsa::Avx2));
    assert!(host::best() <= HostIsa::Ssse3);

    // Removing the ceiling restores full detection.
    host::set_isa_ceiling(None);
    assert!(host::isa_ceiling().is_none());
    assert_eq!(host::best(), native_best);
}
