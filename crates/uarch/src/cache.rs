//! Three-level set-associative cache model.
//!
//! Used to reproduce the paper's Table 1 / Figure 7 experiment: moving
//! from the "wimpy" desktop part (Core i7-8700) to the "beefy" server
//! part (Xeon W-2195) eliminates the memory-bound component of backend
//! bound, leaving core (port) bound exposed. The per-core capacities are
//! derived from Table 1 totals divided by core count (6 cores wimpy,
//! 18 cores beefy):
//!
//! |       | wimpy (per core) | beefy (per core) |
//! |-------|------------------|------------------|
//! | L1d   | 32 KiB           | 32 KiB           |
//! | L2    | 256 KiB          | 1024 KiB         |
//! | L3    | 12 MiB (shared)  | 25.3 MiB (shared)|
//!
//! Lines are 64 B; replacement is true LRU per set. Writes are
//! write-allocate / write-back, but dirtiness is not tracked — only hit
//! levels matter for the latency model.

/// Cache line size in bytes (all modeled Intel parts).
pub const LINE_BYTES: u64 = 64;

/// Configuration for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// *Extra* latency in cycles on a hit at this level, beyond the L1
    /// load-to-use latency already charged by [`crate::latency`].
    pub extra_latency: u32,
}

/// Configuration of the full hierarchy plus DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// L1 data cache.
    pub l1: CacheLevelConfig,
    /// Private L2.
    pub l2: CacheLevelConfig,
    /// Shared L3 (per-core slice view).
    pub l3: CacheLevelConfig,
    /// Extra latency for a DRAM access.
    pub dram_extra_latency: u32,
}

impl CacheConfig {
    /// Wimpy node (Core i7-8700, Coffee Lake): Table 1 column 1.
    pub const fn wimpy() -> Self {
        Self {
            l1: CacheLevelConfig {
                size_bytes: 32 << 10,
                ways: 8,
                extra_latency: 0,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 << 10,
                ways: 4,
                extra_latency: 10,
            },
            l3: CacheLevelConfig {
                size_bytes: 12 << 20,
                ways: 16,
                extra_latency: 38,
            },
            dram_extra_latency: 180,
        }
    }

    /// Beefy node (Xeon W-2195, Skylake-W): Table 1 column 2.
    pub const fn beefy() -> Self {
        Self {
            l1: CacheLevelConfig {
                size_bytes: 32 << 10,
                ways: 8,
                extra_latency: 0,
            },
            l2: CacheLevelConfig {
                size_bytes: 1 << 20,
                ways: 16,
                extra_latency: 10,
            },
            l3: CacheLevelConfig {
                size_bytes: 25344 << 10,
                ways: 11,
                extra_latency: 50,
            },
            dram_extra_latency: 180,
        }
    }
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Serviced by L1d.
    L1,
    /// Serviced by L2.
    L2,
    /// Serviced by L3.
    L3,
    /// Serviced by DRAM.
    Dram,
}

/// Hit/access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// DRAM accesses (misses everywhere).
    pub dram: u64,
}

impl CacheStats {
    /// L1 hit rate in `[0,1]`; 1.0 for an idle cache.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.l1_hits as f64 / self.accesses as f64
        }
    }
}

/// One set-associative level: per-set LRU stacks of line tags.
#[derive(Debug, Clone)]
struct Level {
    sets: Vec<Vec<u64>>, // most-recently-used last
    ways: usize,
    set_mask: u64,
}

impl Level {
    fn new(cfg: CacheLevelConfig) -> Self {
        let lines = (cfg.size_bytes / LINE_BYTES).max(1);
        let ways = cfg.ways.max(1) as u64;
        let mut nsets = (lines / ways).max(1);
        // round down to a power of two so the index is a mask
        nsets = 1 << (63 - nsets.leading_zeros());
        Self {
            sets: vec![Vec::with_capacity(ways as usize); nsets as usize],
            ways: ways as usize,
            set_mask: nsets - 1,
        }
    }

    /// Access a line; returns true on hit. Installs on miss.
    fn access(&mut self, line: u64) -> bool {
        let set = &mut self.sets[(line & self.set_mask) as usize];
        let tag = line >> 1; // any injective function of the line works
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(tag);
            false
        }
    }
}

/// The simulated hierarchy.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    l3: Level,
    cfg: CacheConfig,
    stats: CacheStats,
}

impl CacheSim {
    /// New hierarchy from `cfg`, all levels cold.
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            l1: Level::new(cfg.l1),
            l2: Level::new(cfg.l2),
            l3: Level::new(cfg.l3),
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// Access `bytes` starting at byte address `addr`; returns the
    /// worst (slowest) hit level across the touched lines and the extra
    /// latency to charge.
    pub fn access(&mut self, addr: u64, bytes: u64) -> (HitLevel, u32) {
        let first = addr / LINE_BYTES;
        let last = (addr + bytes.max(1) - 1) / LINE_BYTES;
        let mut worst = HitLevel::L1;
        let mut extra = 0u32;
        for line in first..=last {
            self.stats.accesses += 1;
            let (lvl, e) = self.access_line(line);
            if e >= extra {
                extra = e;
                worst = lvl;
            }
        }
        (worst, extra)
    }

    fn access_line(&mut self, line: u64) -> (HitLevel, u32) {
        if self.l1.access(line) {
            self.stats.l1_hits += 1;
            return (HitLevel::L1, self.cfg.l1.extra_latency);
        }
        if self.l2.access(line) {
            self.stats.l2_hits += 1;
            return (HitLevel::L2, self.cfg.l2.extra_latency);
        }
        if self.l3.access(line) {
            self.stats.l3_hits += 1;
            return (HitLevel::L3, self.cfg.l3.extra_latency);
        }
        self.stats.dram += 1;
        (HitLevel::Dram, self.cfg.dram_extra_latency)
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zero the counters (e.g. after a warm-up pass) without touching
    /// cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The configuration in use.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_l1() {
        let mut c = CacheSim::new(CacheConfig::wimpy());
        let (lvl, e) = c.access(0x1000, 16);
        assert_eq!(lvl, HitLevel::Dram);
        assert!(e >= 100);
        let (lvl, e) = c.access(0x1000, 16);
        assert_eq!(lvl, HitLevel::L1);
        assert_eq!(e, 0);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = CacheSim::new(CacheConfig::beefy());
        c.access(60, 8); // bytes 60..68 span lines 0 and 1
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let cfg = CacheConfig::wimpy();
        let mut c = CacheSim::new(cfg);
        let ws = 64 << 10; // 64 KiB > 32 KiB L1, < 256 KiB L2
                           // two streaming passes
        for pass in 0..2 {
            for a in (0..ws).step_by(64) {
                let (lvl, _) = c.access(a, 64);
                if pass == 1 {
                    assert_ne!(lvl, HitLevel::Dram, "second pass must hit in L2+");
                    assert_ne!(lvl, HitLevel::L3, "64 KiB fits in L2");
                }
            }
        }
        let s = c.stats();
        assert!(
            s.l2_hits > 0,
            "L1-overflowing set must produce L2 hits: {s:?}"
        );
    }

    #[test]
    fn beefy_l2_holds_what_wimpy_spills() {
        // A 512 KiB working set: misses wimpy's 256 KiB L2 (goes to L3),
        // fits beefy's 1 MiB L2. This is the Figure 7 mechanism.
        let ws: u64 = 512 << 10;
        let run = |cfg: CacheConfig| {
            let mut c = CacheSim::new(cfg);
            for _ in 0..3 {
                for a in (0..ws).step_by(64) {
                    c.access(a, 64);
                }
            }
            c.stats()
        };
        let w = run(CacheConfig::wimpy());
        let b = run(CacheConfig::beefy());
        assert!(
            b.l2_hits > w.l2_hits * 2,
            "beefy L2 must absorb the working set (wimpy {w:?} vs beefy {b:?})"
        );
        assert!(w.l3_hits > b.l3_hits, "wimpy must lean on L3");
    }

    #[test]
    fn small_working_set_all_l1_after_warmup() {
        let mut c = CacheSim::new(CacheConfig::wimpy());
        let ws = 8 << 10;
        for a in (0..ws).step_by(64) {
            c.access(a, 64);
        }
        let warm = c.stats();
        for a in (0..ws).step_by(64) {
            let (lvl, _) = c.access(a, 64);
            assert_eq!(lvl, HitLevel::L1);
        }
        let after = c.stats();
        assert_eq!(after.l1_hits - warm.l1_hits, ws / 64);
    }

    #[test]
    fn stats_sum_to_accesses() {
        let mut c = CacheSim::new(CacheConfig::beefy());
        for i in 0..1000u64 {
            c.access(i * 128, 16);
        }
        let s = c.stats();
        assert_eq!(s.accesses, s.l1_hits + s.l2_hits + s.l3_hits + s.dram);
    }
}
