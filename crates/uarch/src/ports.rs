//! Issue-port topology.
//!
//! The paper's Figure 2 describes a simplified Skylake/Coffee-Lake core:
//! SIMD calculation instructions can issue on three ALU ports, scalar
//! instructions on four, loads on two and stores/data-movement on two.
//! That topology — and nothing finer-grained — is what the paper's
//! argument rests on, so it is exactly what we model. [`PortModel`] makes
//! the mapping configurable for ablation benches (e.g. "what if extracts
//! could use the ALU ports?").

use vran_simd::OpClass;

/// An issue port P0..P7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Port(pub u8);

impl Port {
    /// Total number of ports in the model.
    pub const COUNT: usize = 8;
}

/// A set of ports, as a bitmask over P0..P7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortSet(pub u8);

impl PortSet {
    /// Empty set.
    pub const EMPTY: PortSet = PortSet(0);

    /// Build from explicit port indices.
    pub const fn of(ports: &[u8]) -> PortSet {
        let mut m = 0u8;
        let mut i = 0;
        while i < ports.len() {
            m |= 1 << ports[i];
            i += 1;
        }
        PortSet(m)
    }

    /// Whether `p` is a member.
    #[inline]
    pub fn contains(self, p: Port) -> bool {
        self.0 & (1 << p.0) != 0
    }

    /// Number of member ports.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True when no port is a member.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over member ports, lowest index first.
    pub fn iter(self) -> impl Iterator<Item = Port> {
        (0..Port::COUNT as u8)
            .filter(move |p| self.0 & (1 << p) != 0)
            .map(Port)
    }
}

/// Mapping from µop class to the ports it may issue on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortModel {
    /// Ports for SIMD calculation µops.
    pub vec_alu: PortSet,
    /// Ports for scalar ALU µops.
    pub scalar_alu: PortSet,
    /// Ports for load µops.
    pub load: PortSet,
    /// Ports for store / SIMD data-movement µops.
    pub store: PortSet,
    /// Ports for branch µops.
    pub branch: PortSet,
}

impl PortModel {
    /// The paper's Figure 2 model: vector ALU {P0,P1,P2}, scalar ALU
    /// {P0..P3}, loads {P4,P5}, stores {P6,P7}, branches on the
    /// scalar-only port P3.
    pub const fn paper() -> Self {
        Self {
            vec_alu: PortSet::of(&[0, 1, 2]),
            scalar_alu: PortSet::of(&[0, 1, 2, 3]),
            load: PortSet::of(&[4, 5]),
            store: PortSet::of(&[6, 7]),
            branch: PortSet::of(&[3]),
        }
    }

    /// Ablation model: a hypothetical core where data-movement µops may
    /// also borrow the vector ALU ports. Used by the ablation bench to
    /// show APCM's software fix approximates this hardware fix.
    pub const fn movement_on_alu() -> Self {
        Self {
            vec_alu: PortSet::of(&[0, 1, 2]),
            scalar_alu: PortSet::of(&[0, 1, 2, 3]),
            load: PortSet::of(&[4, 5]),
            store: PortSet::of(&[0, 1, 2, 6, 7]),
            branch: PortSet::of(&[3]),
        }
    }

    /// Ports for a µop class.
    #[inline]
    pub fn ports_for(&self, class: OpClass) -> PortSet {
        match class {
            OpClass::VecAlu => self.vec_alu,
            OpClass::ScalarAlu => self.scalar_alu,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::Branch => self.branch,
        }
    }

    /// Maximum sustainable µops/cycle for a class (the paper's "ideal
    /// IPC" per instruction family: 3 for SIMD calculation, 4 for
    /// scalar, 2 for data movement).
    pub fn ideal_ipc(&self, class: OpClass) -> u32 {
        self.ports_for(class).len()
    }
}

impl Default for PortModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portset_membership() {
        let s = PortSet::of(&[0, 2, 7]);
        assert!(s.contains(Port(0)));
        assert!(!s.contains(Port(1)));
        assert!(s.contains(Port(7)));
        assert_eq!(s.len(), 3);
        let v: Vec<u8> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![0, 2, 7]);
    }

    #[test]
    fn paper_model_matches_figure2() {
        let m = PortModel::paper();
        // Paper §4.2: "the SIMD calculation instructions sustainable ALU
        // ports are port 0, 1 and 2, while the general scalar ALU ports
        // are port 0, 1, 2 and 3 ... port 4 and 5 hold the load
        // instruction and port 6 and 7 hold the store instruction".
        assert_eq!(m.ideal_ipc(OpClass::VecAlu), 3);
        assert_eq!(m.ideal_ipc(OpClass::ScalarAlu), 4);
        assert_eq!(m.ideal_ipc(OpClass::Load), 2);
        assert_eq!(m.ideal_ipc(OpClass::Store), 2);
    }

    #[test]
    fn vec_alu_is_subset_of_scalar() {
        let m = PortModel::paper();
        for p in m.vec_alu.iter() {
            assert!(m.scalar_alu.contains(p));
        }
    }

    #[test]
    fn ablation_model_widens_store() {
        let m = PortModel::movement_on_alu();
        assert_eq!(m.ideal_ipc(OpClass::Store), 5);
    }

    #[test]
    fn empty_set() {
        assert!(PortSet::EMPTY.is_empty());
        assert_eq!(PortSet::EMPTY.iter().count(), 0);
    }
}
