//! Execution latencies per µop kind.
//!
//! Calibration sources (documented per DESIGN.md §2 — these are fixed
//! structural constants, not per-experiment fits):
//!
//! * 1-cycle vector integer ALU ops (`padds*`, `pand`, `por`, `pmaxsw`,
//!   shifts, in-lane shuffles): Skylake instruction tables.
//! * `pextrw r32, xmm, imm` ≈ 3 cycles: it is internally a shuffle +
//!   register-file crossing.
//! * `vextracti128` / `vextracti32x8` ≈ 3 cycles: cross-lane movement.
//! * L1 load-to-use ≈ 4 cycles; store data ≈ 1 cycle into the store
//!   buffer (commit happens off the critical path).
//!
//! Cache-level *extra* latencies live in [`crate::cache`].

use vran_simd::OpKind;

/// Execution latency (cycles from dispatch to result availability) for a
/// µop kind, excluding any cache-miss penalty.
pub const fn latency_of(kind: OpKind) -> u32 {
    use OpKind::*;
    match kind {
        // single-cycle vector integer ALU
        VAdds | VSubs | VMax | VMin | VAdd | VAnd | VOr | VXor | VAndnot | VSrai | VSlli
        | VCmpEq => 1,
        // in-register permutes: 1 cycle on the shuffle-capable ALU port
        VShuffle => 1,
        // broadcast of an immediate/GPR: short pipeline through the ALU
        VBroadcast => 1,
        // L1 hit load-to-use
        VLoad => 4,
        // broadcast-load: L1 load + lane replication folded in
        VBroadcastLoad => 5,
        // store data into the store buffer
        VStore | StoreLane => 1,
        // vector→GPR lane extraction: shuffle + domain crossing
        ExtractLane => 3,
        // cross-lane half extraction
        Extract128 | Extract256 => 3,
        // scalar ALU
        SAlu => 1,
        // branch resolves in 1 cycle; misprediction cost is modeled as a
        // front-end squash window in the scheduler, not as latency
        SBranch => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_are_single_cycle() {
        for k in [
            OpKind::VAdds,
            OpKind::VSubs,
            OpKind::VMax,
            OpKind::VAnd,
            OpKind::VOr,
            OpKind::VShuffle,
        ] {
            assert_eq!(latency_of(k), 1, "{k:?}");
        }
    }

    #[test]
    fn movement_ops_are_multicycle() {
        assert_eq!(latency_of(OpKind::VLoad), 4);
        assert_eq!(latency_of(OpKind::ExtractLane), 3);
        assert_eq!(latency_of(OpKind::Extract128), 3);
        assert_eq!(latency_of(OpKind::Extract256), 3);
    }

    #[test]
    fn stores_retire_fast() {
        assert_eq!(latency_of(OpKind::VStore), 1);
        assert_eq!(latency_of(OpKind::StoreLane), 1);
    }
}
