//! Core simulator configuration and server presets.

use crate::cache::CacheConfig;
use crate::ports::PortModel;

/// Full core configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Allocation/rename width — µop slots filled per cycle. 4 on all
    /// modeled parts; this is the denominator of every top-down metric
    /// and the paper's "ideal IPC value of 4".
    pub issue_width: u32,
    /// In-order retirement width (µops/cycle).
    pub retire_width: u32,
    /// Reorder-buffer capacity (Skylake: 224 entries).
    pub rob_size: u32,
    /// Port topology.
    pub ports: PortModel,
    /// Cache hierarchy.
    pub cache: CacheConfig,
    /// Core clock in GHz — converts cycles into the wall-clock figures
    /// (Figs 9, 13, 14) and bandwidth figures (Fig 16).
    pub freq_ghz: f64,
    /// Inject one front-end fetch-bubble cycle every N cycles (0 =
    /// never). Models the small, constant instruction-delivery overhead
    /// the paper reports as "negligible frontend bound" (a few percent).
    pub fetch_bubble_every: u32,
    /// Cycles of allocation stall after a mispredicted branch executes
    /// (pipeline refill depth).
    pub mispredict_penalty: u32,
    /// Pre-touch every address in the trace before simulating, so the
    /// run measures steady-state behaviour (data cache-resident up to
    /// capacity) rather than cold-start compulsory misses. This is how
    /// the paper's long-running VTune profiles see the kernels.
    pub warm_caches: bool,
}

impl CoreConfig {
    /// Wimpy node: Intel Core i7-8700 @ 3.20 GHz (Coffee Lake desktop),
    /// paper §3.1 "Hardware platform".
    pub fn wimpy() -> Self {
        Self {
            issue_width: 4,
            retire_width: 4,
            rob_size: 224,
            ports: PortModel::paper(),
            cache: CacheConfig::wimpy(),
            freq_ghz: 3.2,
            fetch_bubble_every: 64,
            mispredict_penalty: 15,
            warm_caches: false,
        }
    }

    /// Steady-state variant of this configuration (see
    /// [`CoreConfig::warm_caches`]).
    pub fn warmed(self) -> Self {
        Self {
            warm_caches: true,
            ..self
        }
    }

    /// Beefy node: Intel Xeon W-2195 @ 2.30 GHz (Skylake-W), paper §4.1.
    pub fn beefy() -> Self {
        Self {
            cache: CacheConfig::beefy(),
            freq_ghz: 2.3,
            ..Self::wimpy()
        }
    }

    /// Beefy node with frontend-bubble injection disabled — used by
    /// unit tests that need exact slot arithmetic.
    pub fn ideal() -> Self {
        Self {
            fetch_bubble_every: 0,
            ..Self::beefy()
        }
    }

    /// Convert a cycle count to microseconds at this core's frequency.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e3)
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::beefy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_cache_and_clock() {
        let w = CoreConfig::wimpy();
        let b = CoreConfig::beefy();
        assert_eq!(w.issue_width, 4);
        assert!(w.freq_ghz > b.freq_ghz);
        assert!(b.cache.l2.size_bytes > w.cache.l2.size_bytes);
        assert_eq!(w.rob_size, 224);
    }

    #[test]
    fn cycle_conversion() {
        let b = CoreConfig::beefy();
        // 2300 cycles at 2.3 GHz = 1 µs
        assert!((b.cycles_to_us(2300) - 1.0).abs() < 1e-12);
    }
}
