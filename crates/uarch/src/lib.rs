//! # vran-uarch — port-level out-of-order core simulator
//!
//! Replacement substrate for the paper's measurement apparatus (Intel
//! VTune top-down profiles on Skylake/Coffee-Lake parts). The simulator
//! executes `vran-simd` µop traces against the paper's simplified core
//! model (Figure 2):
//!
//! * 8 issue ports — vector ALU on {P0,P1,P2}, scalar ALU on {P0..P3},
//!   loads on {P4,P5}, stores and SIMD data-movement on {P6,P7};
//! * a 4-slot-per-cycle allocation/retire pipeline (ideal IPC 4, the
//!   value the paper quotes for "modern Intel processors");
//! * a ROB-bounded out-of-order window with greedy oldest-first dispatch;
//! * a 3-level set-associative cache hierarchy (Table 1 wimpy/beefy
//!   configurations);
//! * Yasin-style top-down slot accounting: retiring / frontend bound /
//!   bad speculation / backend bound, with backend split into memory
//!   bound and core bound — the exact metric tree the paper's Figures
//!   5, 6, 7 and 15 report.
//!
//! The simulator is deterministic: same trace + same config → same
//! report, which the test suite and benchmark harness rely on.
//!
//! ## Calibration
//!
//! Every latency/width constant is documented in [`latency`] and
//! [`config`]; none are fitted per-experiment. See DESIGN.md §2.
//!
//! # Example
//!
//! ```
//! use vran_simd::{Mem, RegWidth, Vm};
//! use vran_uarch::{CoreConfig, CoreSim};
//!
//! // a burst of independent SIMD adds…
//! let mut vm = Vm::tracing(Mem::new());
//! let a = vm.splat(RegWidth::Sse128, 1);
//! let b = vm.splat(RegWidth::Sse128, 2);
//! for _ in 0..3000 {
//!     vm.adds(a, b);
//! }
//!
//! // …saturates the three vector ALU ports: IPC approaches 3
//! let report = CoreSim::new(CoreConfig::beefy().warmed()).run(&vm.take_trace());
//! assert!(report.ipc > 2.7 && report.ipc <= 3.05);
//! assert!(report.port_util[0] > 0.9); // P0–P2 busy…
//! assert_eq!(report.port_busy[6], 0); // …store ports idle
//! ```

pub mod cache;
pub mod config;
pub mod critpath;
pub mod latency;
pub mod ports;
pub mod report;
pub mod sim;

pub use cache::{CacheConfig, CacheLevelConfig, CacheSim, CacheStats};
pub use config::CoreConfig;
pub use critpath::{bounds, Bounds};
pub use latency::latency_of;
pub use ports::{Port, PortModel, PortSet};
pub use report::{SimReport, TopDown};
pub use sim::CoreSim;
