//! Critical-path analysis of µop traces.
//!
//! Two analytic lower bounds on execution time, independent of the
//! scheduler:
//!
//! * **dependency bound** — the longest latency-weighted chain through
//!   the SSA graph: no out-of-order machine can finish faster;
//! * **resource bound** — for each port class, µops divided by port
//!   count (and all µops divided by issue width).
//!
//! The simulator must never report fewer cycles than either bound
//! (property-tested), and the gap between the achieved cycles and
//! `max(bounds)` quantifies scheduling slack. For the paper's kernels
//! the bounds explain the mechanism in one line each: the original
//! arrangement is resource-bound on the 2 store ports; APCM is
//! resource-bound on the 3 ALU ports at a quarter of the µop count.

use crate::config::CoreConfig;
use crate::latency::latency_of;
use vran_simd::{OpClass, Trace};

/// The analytic bounds for a trace under a port model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds {
    /// Longest latency-weighted dependency chain (cycles).
    pub dependency: u64,
    /// Port-throughput bound (cycles): max over classes of
    /// `ceil(µops_in_class / ports_for_class)`.
    pub resource: u64,
    /// Front-end bound: `ceil(µops / issue_width)`.
    pub frontend: u64,
}

impl Bounds {
    /// The binding constraint.
    pub fn overall(&self) -> u64 {
        self.dependency.max(self.resource).max(self.frontend)
    }

    /// Which constraint binds (for reports).
    pub fn binding(&self) -> &'static str {
        if self.dependency >= self.resource && self.dependency >= self.frontend {
            "dependency"
        } else if self.resource >= self.frontend {
            "ports"
        } else {
            "frontend"
        }
    }
}

/// Compute the bounds for `trace` under `cfg`'s port model. Cache
/// effects are excluded (L1-hit latencies), making this the
/// steady-state floor.
pub fn bounds(trace: &Trace, cfg: &CoreConfig) -> Bounds {
    // --- dependency bound: longest path over the SSA DAG ---
    let max_ssa = trace
        .ops
        .iter()
        .filter_map(|o| o.dst)
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(0);
    // finish[ssa] = earliest cycle the value can be ready
    let mut finish = vec![0u64; max_ssa];
    let mut longest = 0u64;
    for op in &trace.ops {
        let ready = op.sources().map(|s| finish[s as usize]).max().unwrap_or(0);
        let done = ready + latency_of(op.kind) as u64;
        if let Some(d) = op.dst {
            finish[d as usize] = done;
        }
        longest = longest.max(done);
    }

    // --- resource bound ---
    let h = trace.class_histogram();
    let per_class = [
        (h.vec_alu, cfg.ports.ports_for(OpClass::VecAlu).len() as u64),
        (
            h.scalar_alu,
            cfg.ports.ports_for(OpClass::ScalarAlu).len() as u64,
        ),
        (h.load, cfg.ports.ports_for(OpClass::Load).len() as u64),
        (h.store, cfg.ports.ports_for(OpClass::Store).len() as u64),
        (h.branch, cfg.ports.ports_for(OpClass::Branch).len() as u64),
    ];
    // Scalar µops may also use the vector ports in the paper's model;
    // the per-class quotient is still a valid (if loose) lower bound
    // because each class alone cannot beat its own port count.
    let resource = per_class
        .iter()
        .map(|&(n, p)| n.div_ceil(p.max(1)))
        .max()
        .unwrap_or(0);

    let frontend = (trace.len() as u64).div_ceil(cfg.issue_width as u64);

    Bounds {
        dependency: longest,
        resource,
        frontend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CoreSim;
    use vran_simd::{Mem, RegWidth, Vm};

    fn cfg() -> CoreConfig {
        CoreConfig::ideal().warmed()
    }

    #[test]
    fn chain_trace_is_dependency_bound() {
        let mut vm = Vm::tracing(Mem::new());
        let mut a = vm.splat(RegWidth::Sse128, 1);
        let b = vm.splat(RegWidth::Sse128, 2);
        for _ in 0..500 {
            a = vm.adds(a, b);
        }
        let t = vm.take_trace();
        let bd = bounds(&t, &cfg());
        assert!(bd.dependency >= 500, "{bd:?}");
        assert_eq!(bd.binding(), "dependency");
        let r = CoreSim::new(cfg()).run(&t);
        assert!(
            r.cycles >= bd.overall(),
            "sim {} below bound {}",
            r.cycles,
            bd.overall()
        );
        // and reasonably tight for a pure chain
        assert!(
            r.cycles <= bd.overall() + 16,
            "sim {} vs bound {}",
            r.cycles,
            bd.overall()
        );
    }

    #[test]
    fn wide_trace_is_port_bound() {
        let mut vm = Vm::tracing(Mem::new());
        let a = vm.splat(RegWidth::Sse128, 1);
        let b = vm.splat(RegWidth::Sse128, 2);
        for _ in 0..900 {
            vm.adds(a, b);
        }
        let t = vm.take_trace();
        let bd = bounds(&t, &cfg());
        assert_eq!(bd.binding(), "ports");
        assert!(
            bd.resource >= 300,
            "900 independent vec ops over 3 ports: {bd:?}"
        );
        let r = CoreSim::new(cfg()).run(&t);
        assert!(r.cycles >= bd.overall());
    }

    #[test]
    fn movement_stream_is_store_port_bound() {
        let mut mem = Mem::new();
        let src = mem.alloc_from(&[5i16; 8]);
        let dst = mem.alloc(512);
        let mut vm = Vm::tracing(mem);
        let r = vm.load(RegWidth::Sse128, src);
        for i in 0..256 {
            vm.extract_store(r, i % 8, dst.base + (i % 512));
        }
        let bd = bounds(&vm.take_trace(), &cfg());
        assert_eq!(bd.binding(), "ports");
        assert!(bd.resource >= 256, "512 movement µops on 2 ports: {bd:?}");
    }

    #[test]
    fn empty_style_trace_has_zero_bounds() {
        let mut vm = Vm::tracing(Mem::new());
        vm.scalar_ops(1);
        let bd = bounds(&vm.take_trace(), &cfg());
        assert_eq!(bd.frontend, 1);
        assert_eq!(bd.resource, 1);
    }
}
