//! Greedy out-of-order scheduler with top-down slot accounting.
//!
//! The model is the standard "ROB-window + issue ports" abstraction:
//!
//! 1. **Allocate** up to `issue_width` µops per cycle, in program order,
//!    into a ROB-bounded window. Every allocation slot that cannot be
//!    filled is attributed to a top-down category (frontend bubble,
//!    bad-speculation refill, or backend stall split memory/core) —
//!    this is exactly the slot accounting of Yasin's top-down method
//!    that VTune implements and the paper reports.
//! 2. **Dispatch** ready µops (all producers complete) to compatible
//!    free ports, oldest first; each port accepts one µop per cycle.
//!    Loads probe the cache model and may acquire extra latency.
//! 3. **Retire** completed µops in order, up to `retire_width`/cycle.
//!
//! No wrong-path µops are simulated; a mispredicted branch instead
//! freezes allocation for `mispredict_penalty` cycles (front-end refill),
//! and those empty slots are charged to bad speculation.

use crate::cache::CacheSim;
use crate::config::CoreConfig;
use crate::latency::latency_of;
use crate::ports::Port;
use crate::report::{SimReport, TopDown};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use vran_simd::{OpClass, OpKind, Trace};

/// Sentinel for "op not complete yet".
const NOT_DONE: u64 = u64::MAX;

/// A configured core ready to execute traces.
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: CoreConfig,
}

/// Dependency graph in CSR form: for each op, the ops that consume its
/// result.
struct DepGraph {
    offsets: Vec<u32>,
    edges: Vec<u32>,
    producer_of: Vec<u32>, // SSA id -> producing op index
}

impl DepGraph {
    fn build(trace: &Trace) -> Self {
        let n = trace.ops.len();
        let max_ssa = trace
            .ops
            .iter()
            .filter_map(|o| o.dst)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        let mut producer_of = vec![u32::MAX; max_ssa];
        for (i, op) in trace.ops.iter().enumerate() {
            if let Some(d) = op.dst {
                producer_of[d as usize] = i as u32;
            }
        }
        let mut counts = vec![0u32; n];
        for op in trace.ops.iter() {
            for s in op.sources() {
                let p = producer_of[s as usize];
                if p != u32::MAX {
                    counts[p as usize] += 1;
                }
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut edges = vec![0u32; offsets[n] as usize];
        let mut cursor = offsets.clone();
        for (i, op) in trace.ops.iter().enumerate() {
            for s in op.sources() {
                let p = producer_of[s as usize];
                if p != u32::MAX {
                    edges[cursor[p as usize] as usize] = i as u32;
                    cursor[p as usize] += 1;
                }
            }
        }
        Self {
            offsets,
            edges,
            producer_of,
        }
    }

    fn dependents(&self, op: usize) -> &[u32] {
        &self.edges[self.offsets[op] as usize..self.offsets[op + 1] as usize]
    }
}

/// Ready queues per port class, ordered oldest-first.
#[derive(Default)]
struct ReadyQueues {
    vec_alu: BinaryHeap<Reverse<u32>>,
    scalar_alu: BinaryHeap<Reverse<u32>>,
    load: BinaryHeap<Reverse<u32>>,
    store: BinaryHeap<Reverse<u32>>,
    branch: BinaryHeap<Reverse<u32>>,
}

impl ReadyQueues {
    fn push(&mut self, class: OpClass, idx: u32) {
        self.queue(class).push(Reverse(idx));
    }

    fn queue(&mut self, class: OpClass) -> &mut BinaryHeap<Reverse<u32>> {
        match class {
            OpClass::VecAlu => &mut self.vec_alu,
            OpClass::ScalarAlu => &mut self.scalar_alu,
            OpClass::Load => &mut self.load,
            OpClass::Store => &mut self.store,
            OpClass::Branch => &mut self.branch,
        }
    }

    fn peek(&mut self, class: OpClass) -> Option<u32> {
        self.queue(class).peek().map(|Reverse(i)| *i)
    }

    fn pop(&mut self, class: OpClass) -> Option<u32> {
        self.queue(class).pop().map(|Reverse(i)| i)
    }
}

impl CoreSim {
    /// New simulator with the given configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Execute `trace` to completion and report metrics.
    pub fn run(&self, trace: &Trace) -> SimReport {
        self.run_impl(trace, None).0
    }

    /// Execute `trace`, additionally sampling per-cycle activity every
    /// `every` cycles (up to `max_samples` samples) — the data behind
    /// timeline views like the `port_analysis` example.
    pub fn run_sampled(
        &self,
        trace: &Trace,
        every: u64,
        max_samples: usize,
    ) -> (SimReport, Vec<crate::report::CycleSample>) {
        let (report, samples) = self.run_impl(trace, Some((every.max(1), max_samples)));
        (report, samples)
    }

    fn run_impl(
        &self,
        trace: &Trace,
        sampling: Option<(u64, usize)>,
    ) -> (SimReport, Vec<crate::report::CycleSample>) {
        let cfg = &self.cfg;
        let n = trace.ops.len();
        assert!(n > 0, "cannot simulate an empty trace");
        let graph = DepGraph::build(trace);
        let mut cache = CacheSim::new(cfg.cache);
        if cfg.warm_caches {
            for op in &trace.ops {
                if let Some(addr) = op.addr {
                    cache.access(addr, op.bytes as u64);
                }
            }
            cache.reset_stats();
        }

        // Per-op state.
        let mut done_at = vec![NOT_DONE; n]; // completion cycle
        let mut remaining = vec![0u16; n]; // unfinished producers (valid once allocated)
        let mut allocated = vec![false; n];
        let mut dispatched = vec![false; n];
        let mut mem_extra = vec![0u32; n]; // cache-miss latency charged at dispatch
        let mut mem_level = vec![0u8; n]; // 0 = L1/none, 1 = L2, 2 = L3, 3 = DRAM

        let mut ready = ReadyQueues::default();
        let mut window: VecDeque<u32> = VecDeque::with_capacity(cfg.rob_size as usize);
        let mut inflight: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

        let mut next_fetch: usize = 0;
        let mut cycle: u64 = 0;
        let mut recovery_until: u64 = 0;
        let mut samples = Vec::new();

        // Top-down slot counters.
        let mut slots_retiring: u64 = 0;
        let mut slots_frontend: u64 = 0;
        let mut slots_badspec: u64 = 0;
        let mut slots_backend_core: u64 = 0;
        let mut slots_backend_mem: u64 = 0;
        let mut slots_mem_levels = [0u64; 3]; // L2 / L3 / DRAM

        let mut port_busy = [0u64; Port::COUNT];
        let mut store_bytes: u64 = 0;
        let mut load_bytes: u64 = 0;
        let mut retired_uops: u64 = 0;
        let mut retired_instrs: u64 = 0;

        // Which class(es) each port serves, precomputed.
        let port_classes: Vec<Vec<OpClass>> = (0..Port::COUNT as u8)
            .map(|p| {
                [
                    OpClass::VecAlu,
                    OpClass::ScalarAlu,
                    OpClass::Load,
                    OpClass::Store,
                    OpClass::Branch,
                ]
                .into_iter()
                .filter(|&c| cfg.ports.ports_for(c).contains(Port(p)))
                .collect()
            })
            .collect();

        while next_fetch < n || !window.is_empty() {
            let mut cycle_ports = [false; Port::COUNT];
            let mut alloc_this_cycle = 0u8;
            // ---- complete ----
            while let Some(&Reverse((t, idx))) = inflight.peek() {
                if t > cycle {
                    break;
                }
                inflight.pop();
                done_at[idx as usize] = t;
                for &d in graph.dependents(idx as usize) {
                    if allocated[d as usize] && !dispatched[d as usize] {
                        remaining[d as usize] -= 1;
                        if remaining[d as usize] == 0 {
                            ready.push(trace.ops[d as usize].kind.class(), d);
                        }
                    }
                }
            }

            // ---- dispatch ----
            for p in 0..Port::COUNT {
                // Oldest ready µop among the classes this port serves.
                let mut best: Option<(u32, OpClass)> = None;
                for &c in &port_classes[p] {
                    if let Some(idx) = ready.peek(c) {
                        if best.map(|(b, _)| idx < b).unwrap_or(true) {
                            best = Some((idx, c));
                        }
                    }
                }
                if let Some((idx, c)) = best {
                    ready.pop(c);
                    let op = &trace.ops[idx as usize];
                    dispatched[idx as usize] = true;
                    port_busy[p] += 1;
                    cycle_ports[p] = true;
                    let mut lat = latency_of(op.kind);
                    if let Some(addr) = op.addr {
                        let (lvl, extra) = cache.access(addr, op.bytes as u64);
                        if op.kind.class() == OpClass::Load {
                            lat += extra;
                            mem_extra[idx as usize] = extra;
                            mem_level[idx as usize] = match lvl {
                                crate::cache::HitLevel::L1 => 0,
                                crate::cache::HitLevel::L2 => 1,
                                crate::cache::HitLevel::L3 => 2,
                                crate::cache::HitLevel::Dram => 3,
                            };
                        }
                        // Stores drain from the store buffer off the
                        // critical path; only loads stall on misses.
                    }
                    match op.kind.class() {
                        OpClass::Store => store_bytes += op.bytes as u64,
                        OpClass::Load => load_bytes += op.bytes as u64,
                        _ => {}
                    }
                    if op.kind == OpKind::SBranch && op.mispredict {
                        // Front-end refill begins once the branch resolves.
                        recovery_until =
                            recovery_until.max(cycle + lat as u64 + cfg.mispredict_penalty as u64);
                    }
                    inflight.push(Reverse((cycle + lat as u64, idx)));
                }
            }

            // ---- retire ----
            let mut retired_this_cycle = 0;
            while retired_this_cycle < cfg.retire_width {
                match window.front() {
                    Some(&idx) if done_at[idx as usize] <= cycle => {
                        window.pop_front();
                        retired_uops += 1;
                        if trace.ops[idx as usize].first_of_instr {
                            retired_instrs += 1;
                        }
                        retired_this_cycle += 1;
                    }
                    _ => break,
                }
            }

            // ---- allocate + slot accounting ----
            let bubble = cfg.fetch_bubble_every > 0
                && cycle % cfg.fetch_bubble_every as u64 == (cfg.fetch_bubble_every - 1) as u64;
            if cycle < recovery_until {
                slots_badspec += cfg.issue_width as u64;
            } else if bubble && next_fetch < n {
                slots_frontend += cfg.issue_width as u64;
            } else {
                for _slot in 0..cfg.issue_width {
                    if next_fetch >= n || window.len() >= cfg.rob_size as usize {
                        // Backend stall (ROB full, or window draining
                        // behind a slow chain after the trace ended):
                        // attribute remaining slots by the oldest
                        // in-flight µop's blocking reason. A load that
                        // took a cache-miss penalty charges to memory
                        // bound; everything else (ports, dep chains)
                        // charges to core bound.
                        if window.is_empty() {
                            break;
                        }
                        let blocking = window
                            .iter()
                            .find(|&&f| done_at[f as usize] == NOT_DONE)
                            .map(|&f| f as usize)
                            .filter(|&f| {
                                trace.ops[f].kind.class() == OpClass::Load
                                    && dispatched[f]
                                    && mem_extra[f] > 0
                            });
                        let remaining_slots = (cfg.issue_width - _slot) as u64;
                        match blocking {
                            Some(f) => {
                                slots_backend_mem += remaining_slots;
                                let lvl = mem_level[f];
                                if (1..=3).contains(&lvl) {
                                    slots_mem_levels[lvl as usize - 1] += remaining_slots;
                                }
                            }
                            None => slots_backend_core += remaining_slots,
                        }
                        break;
                    }
                    let idx = next_fetch as u32;
                    let op = &trace.ops[next_fetch];
                    allocated[next_fetch] = true;
                    let mut deps = 0u16;
                    for s in op.sources() {
                        let p = graph.producer_of[s as usize];
                        if p != u32::MAX && done_at[p as usize] == NOT_DONE {
                            deps += 1;
                        }
                    }
                    remaining[next_fetch] = deps;
                    if deps == 0 {
                        ready.push(op.kind.class(), idx);
                    }
                    window.push_back(idx);
                    slots_retiring += 1;
                    alloc_this_cycle += 1;
                    next_fetch += 1;
                }
            }

            if let Some((every, max)) = sampling {
                if cycle.is_multiple_of(every) && samples.len() < max {
                    samples.push(crate::report::CycleSample {
                        cycle,
                        port_dispatch: cycle_ports,
                        retired: retired_this_cycle as u8,
                        allocated: alloc_this_cycle,
                    });
                }
            }
            cycle += 1;
            debug_assert!(cycle < 1 << 40, "runaway simulation");
        }

        let cycles = cycle.max(1);
        let total_slots = (cycles * cfg.issue_width as u64).max(1) as f64;
        let topdown = TopDown {
            retiring: slots_retiring as f64 / total_slots,
            frontend: slots_frontend as f64 / total_slots,
            bad_speculation: slots_badspec as f64 / total_slots,
            backend_core: slots_backend_core as f64 / total_slots,
            backend_mem: slots_backend_mem as f64 / total_slots,
            mem_levels: slots_mem_levels.map(|s| s as f64 / total_slots),
        };
        let mut port_util = [0f64; Port::COUNT];
        for (u, b) in port_util.iter_mut().zip(port_busy.iter()) {
            *u = *b as f64 / cycles as f64;
        }
        let report = SimReport {
            cycles,
            uops: retired_uops,
            instructions: retired_instrs,
            ipc: retired_instrs as f64 / cycles as f64,
            upc: retired_uops as f64 / cycles as f64,
            topdown,
            port_busy,
            port_util,
            store_bytes,
            load_bytes,
            store_bw_bits_per_cycle: store_bytes as f64 * 8.0 / cycles as f64,
            load_bw_bits_per_cycle: load_bytes as f64 * 8.0 / cycles as f64,
            cache: cache.stats(),
            class_hist: trace.class_histogram(),
            time_us: cfg.cycles_to_us(cycles),
        };
        (report, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vran_simd::{Mem, RegWidth, Vm};

    fn sim() -> CoreSim {
        CoreSim::new(CoreConfig::ideal())
    }

    /// Build a trace of `n` independent vector ALU ops.
    fn independent_alu_trace(n: usize) -> Trace {
        let mut vm = Vm::tracing(Mem::new());
        let a = vm.splat(RegWidth::Sse128, 1);
        let b = vm.splat(RegWidth::Sse128, 2);
        for _ in 0..n {
            vm.adds(a, b);
        }
        vm.take_trace()
    }

    /// Build a trace of `n` chained (serially dependent) ALU ops.
    fn chained_alu_trace(n: usize) -> Trace {
        let mut vm = Vm::tracing(Mem::new());
        let mut a = vm.splat(RegWidth::Sse128, 1);
        let b = vm.splat(RegWidth::Sse128, 0);
        for _ in 0..n {
            a = vm.adds(a, b);
        }
        vm.take_trace()
    }

    #[test]
    fn independent_vec_alu_saturates_three_ports() {
        // 3 vector ALU ports → steady-state 3 µops/cycle even though the
        // front end delivers 4. This is the paper's "ideal IPC 3 for
        // SIMD calculation".
        let r = sim().run(&independent_alu_trace(3000));
        assert!(
            r.ipc > 2.7 && r.ipc <= 3.05,
            "vec ALU IPC should approach 3, got {}",
            r.ipc
        );
        // ports 0..2 busy, others idle
        assert!(r.port_util[0] > 0.9);
        assert!(r.port_util[1] > 0.9);
        assert!(r.port_util[2] > 0.9);
        assert_eq!(r.port_busy[4], 0);
        assert!(
            r.topdown.backend_core > 0.15,
            "port-bound kernel shows core bound"
        );
    }

    #[test]
    fn chained_alu_exposes_dependency_stalls() {
        let r = sim().run(&chained_alu_trace(2000));
        // Serial chain: ~1 µop/cycle regardless of port count.
        assert!(
            r.ipc < 1.2,
            "dependent chain must be latency-bound, got {}",
            r.ipc
        );
        assert!(r.topdown.backend_core > 0.5);
    }

    #[test]
    fn scalar_alu_reaches_ipc_four() {
        let mut vm = Vm::tracing(Mem::new());
        vm.scalar_ops(4000);
        let r = sim().run(&vm.take_trace());
        assert!(
            r.ipc > 3.7,
            "scalar code should approach ideal IPC 4, got {}",
            r.ipc
        );
        assert!(r.topdown.retiring > 0.9);
        assert!(r.topdown.backend() < 0.1);
    }

    #[test]
    fn store_streams_are_movement_port_bound() {
        // Model the baseline arrangement inner loop: pextrw+store pairs.
        let mut mem = Mem::new();
        let src = mem.alloc_from(&[7i16; 8]);
        let dst = mem.alloc(4096);
        let mut vm = Vm::tracing(mem);
        let r = vm.load(RegWidth::Sse128, src);
        for i in 0..1000 {
            vm.extract_store(r, i % 8, dst.base + (i % dst.len));
        }
        let rep = sim().run(&vm.take_trace());
        // 2000 movement µops on 2 ports → ≥1000 cycles; µops/cycle ≈ 2.
        assert!(
            rep.upc < 2.3,
            "store-port-bound kernel capped near 2 µops/cycle: {}",
            rep.upc
        );
        // IPC counts instructions (pextrw = 2 µops) → ≈ 1.
        assert!(
            rep.ipc < 1.3,
            "baseline-style extraction IPC ≈ 1, got {}",
            rep.ipc
        );
        assert!(
            rep.topdown.backend_core > 0.35,
            "movement-port saturation is backend-core bound: {:?}",
            rep.topdown
        );
        // store ports busy, ALU ports idle — the paper's idle-port observation
        assert!(rep.port_util[6] > 0.8);
        assert!(rep.port_util[7] > 0.8);
        assert!(rep.port_util[0] < 0.05);
    }

    #[test]
    fn topdown_fractions_sum_to_one_ish() {
        for trace in [independent_alu_trace(500), chained_alu_trace(500)] {
            let r = sim().run(&trace);
            let t = r.topdown.total();
            assert!(t > 0.9 && t <= 1.01, "top-down total {t} out of range");
        }
    }

    #[test]
    fn mispredicts_show_as_bad_speculation() {
        let mut vm = Vm::tracing(Mem::new());
        for i in 0..400 {
            vm.scalar_ops(8);
            vm.branch(i % 10 == 0); // 10% mispredict rate
        }
        let r = sim().run(&vm.take_trace());
        assert!(
            r.topdown.bad_speculation > 0.2,
            "frequent mispredicts must surface: {:?}",
            r.topdown
        );
    }

    #[test]
    fn fetch_bubbles_show_as_frontend() {
        let mut cfg = CoreConfig::ideal();
        cfg.fetch_bubble_every = 4; // one bubble cycle in four
        let r = CoreSim::new(cfg).run(&independent_alu_trace(2000));
        assert!(
            r.topdown.frontend > 0.1,
            "bubbles must appear as frontend: {:?}",
            r.topdown
        );
    }

    #[test]
    fn large_working_set_is_memory_bound_on_wimpy() {
        // Chase dependent (indexed) loads over a 512 KiB working set,
        // twice: it overflows wimpy's 256 KiB L2 (second pass hits L3,
        // 38 extra cycles) but fits beefy's 1 MiB L2 (10 extra cycles).
        // Dependent loads make latency visible, reproducing the
        // Figure 7 mechanism: the beefy server's larger caches suppress
        // memory bound.
        let build = || {
            let mut mem = Mem::new();
            let buf = mem.alloc(512 << 10); // 1 MiB of i16
            let mut vm = Vm::tracing(mem);
            let mut prev = vm.splat(RegWidth::Sse128, 0);
            for _pass in 0..7 {
                // stride 128 B → 8192 distinct lines ≈ 512 KiB footprint
                for off in (0..(512 << 10) - 8).step_by(64) {
                    prev = vm.load_indexed(RegWidth::Sse128, buf.slice(off, 8), prev);
                }
            }
            vm.take_trace()
        };
        let wimpy = CoreSim::new(CoreConfig::wimpy()).run(&build());
        let beefy = CoreSim::new(CoreConfig::beefy()).run(&build());
        assert!(wimpy.topdown.backend_mem > 0.5, "wimpy {:?}", wimpy.topdown);
        assert!(
            wimpy.topdown.backend_mem > beefy.topdown.backend_mem,
            "wimpy must be more memory bound (wimpy {:?} vs beefy {:?})",
            wimpy.topdown,
            beefy.topdown
        );
        assert!(
            wimpy.cycles as f64 > beefy.cycles as f64 * 1.5,
            "L2-resident (beefy) vs L3-resident (wimpy) must show in cycles: {} vs {}",
            wimpy.cycles,
            beefy.cycles
        );
    }

    #[test]
    fn bandwidth_metering_counts_store_path() {
        // Interleave loads and full-register stores over a small, hot
        // region so everything after the first line hits L1.
        let mut mem = Mem::new();
        let src = mem.alloc_from(&[1i16; 64]);
        let dst = mem.alloc(64);
        let mut vm = Vm::tracing(mem);
        for i in 0..400 {
            let r = vm.load(RegWidth::Sse128, src.slice((i % 8) * 8, 8));
            vm.store(r, dst.slice((i % 8) * 8, 8));
        }
        let rep = sim().run(&vm.take_trace());
        assert_eq!(rep.store_bytes, 400 * 16);
        assert_eq!(rep.load_bytes, 400 * 16);
        // Full-register stores keep the store path far above the 16
        // bits/cycle the extract-based baseline achieves.
        assert!(
            rep.store_bw_bits_per_cycle > 100.0,
            "{}",
            rep.store_bw_bits_per_cycle
        );
    }

    #[test]
    fn cold_miss_stalls_dependents() {
        // A single cold load (DRAM) followed by dependent stores: the
        // stores cannot dispatch until the miss returns, so total cycles
        // exceed the DRAM penalty.
        let mut mem = Mem::new();
        let src = mem.alloc_from(&[1i16; 8]);
        let dst = mem.alloc(8);
        let mut vm = Vm::tracing(mem);
        let r = vm.load(RegWidth::Sse128, src);
        vm.store(r, dst);
        let rep = sim().run(&vm.take_trace());
        assert!(
            rep.cycles > 150,
            "cold DRAM miss must dominate: {} cycles",
            rep.cycles
        );
        assert!(rep.topdown.backend_mem > 0.5, "{:?}", rep.topdown);
    }

    #[test]
    fn deterministic_reports() {
        let t = independent_alu_trace(777);
        let a = sim().run(&t);
        let b = sim().run(&t);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.port_busy, b.port_busy);
    }

    #[test]
    fn ipc_counts_instructions_not_uops() {
        let mut mem = Mem::new();
        let src = mem.alloc_from(&[1i16; 8]);
        let dst = mem.alloc(8);
        let mut vm = Vm::tracing(mem);
        let r = vm.load(RegWidth::Sse128, src);
        vm.extract_store(r, 0, dst.base); // 1 instruction, 2 µops
        let rep = sim().run(&vm.take_trace());
        assert_eq!(rep.instructions, 2); // load + pextrw
        assert_eq!(rep.uops, 3);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = sim().run(&Trace::new());
    }

    #[test]
    fn memory_levels_sum_to_backend_mem() {
        // L2-resident dependent chase: all memory-bound slots must be
        // attributed to a concrete level, and it should be L2.
        let mut mem = Mem::new();
        let buf = mem.alloc(128 << 10); // 256 KiB of i16
        let mut vm = Vm::tracing(mem);
        let mut prev = vm.splat(RegWidth::Sse128, 0);
        for _pass in 0..3 {
            for off in (0..(128 << 10) - 8).step_by(64) {
                prev = vm.load_indexed(RegWidth::Sse128, buf.slice(off, 8), prev);
            }
        }
        let r = CoreSim::new(CoreConfig::beefy().warmed()).run(&vm.take_trace());
        let t = r.topdown;
        let lvl_sum: f64 = t.mem_levels.iter().sum();
        assert!(
            (lvl_sum - t.backend_mem).abs() < 1e-9,
            "levels {:?} must sum to backend_mem {}",
            t.mem_levels,
            t.backend_mem
        );
        assert!(t.backend_mem > 0.3, "{t:?}");
        assert!(
            t.mem_levels[0] > t.mem_levels[1] + t.mem_levels[2],
            "a 256 KiB chase on beefy is L2-bound: {:?}",
            t.mem_levels
        );
    }

    #[test]
    fn sampling_matches_aggregates() {
        let t = independent_alu_trace(1000);
        let (report, samples) = sim().run_sampled(&t, 1, usize::MAX);
        // sampling every cycle: per-port dispatch counts must sum to
        // the aggregate busy counters
        assert_eq!(samples.len() as u64, report.cycles);
        for p in 0..8 {
            let sum = samples.iter().filter(|s| s.port_dispatch[p]).count() as u64;
            assert_eq!(sum, report.port_busy[p], "port {p}");
        }
        let alloc: u64 = samples.iter().map(|s| s.allocated as u64).sum();
        assert_eq!(alloc, t.len() as u64);
        // the sampled run must not perturb the simulation
        let plain = sim().run(&t);
        assert_eq!(plain.cycles, report.cycles);
    }

    #[test]
    fn sampling_respects_stride_and_cap() {
        let t = independent_alu_trace(1000);
        let (_, samples) = sim().run_sampled(&t, 10, 7);
        assert_eq!(samples.len(), 7);
        assert!(samples.windows(2).all(|w| w[1].cycle - w[0].cycle == 10));
    }
}
