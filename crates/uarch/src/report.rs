//! Simulation reports: the metrics the paper's figures plot.

use crate::cache::CacheStats;
use crate::ports::Port;
use vran_simd::ClassHistogram;

/// Yasin top-down level-1 (+ backend level-2 split) slot fractions.
/// All five fields are in `[0, 1]` and sum to ~1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TopDown {
    /// Slots filled by µops that eventually retire.
    pub retiring: f64,
    /// Slots empty because the front end delivered no µops.
    pub frontend: f64,
    /// Slots lost to mispredicted-branch squash/refill.
    pub bad_speculation: f64,
    /// Backend-bound slots blocked on execution resources (ports, dep
    /// chains) — the paper's "core bound".
    pub backend_core: f64,
    /// Backend-bound slots blocked on the memory subsystem — the
    /// paper's "memory bound".
    pub backend_mem: f64,
    /// Level-2 split of `backend_mem` by where the blocking load hit:
    /// `[L2, L3, DRAM]` (an L1 hit never blocks attribution). The
    /// paper's §4.1: "most of the protocols suffer on the L1 and L2
    /// cache bound".
    pub mem_levels: [f64; 3],
}

impl TopDown {
    /// Total backend bound (core + memory), the level-1 metric in
    /// Figures 5/6/15.
    pub fn backend(&self) -> f64 {
        self.backend_core + self.backend_mem
    }

    /// Sum of all categories (≈1; exposed for invariant tests).
    pub fn total(&self) -> f64 {
        self.retiring + self.frontend + self.bad_speculation + self.backend()
    }
}

/// One sampled cycle of execution (see `CoreSim::run_sampled`).
#[derive(Debug, Clone, Copy)]
pub struct CycleSample {
    /// Cycle index.
    pub cycle: u64,
    /// Whether each port dispatched a µop this cycle.
    pub port_dispatch: [bool; Port::COUNT],
    /// µops retired this cycle.
    pub retired: u8,
    /// µops allocated this cycle.
    pub allocated: u8,
}

/// Everything the simulator measures for one trace.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Simulated cycles from first allocation to last retirement.
    pub cycles: u64,
    /// Retired µops.
    pub uops: u64,
    /// Retired architectural instructions.
    pub instructions: u64,
    /// Instructions per cycle — the figures' IPC.
    pub ipc: f64,
    /// µops per cycle (bounded by `issue_width`).
    pub upc: f64,
    /// Top-down slot breakdown.
    pub topdown: TopDown,
    /// Busy cycles per port P0..P7.
    pub port_busy: [u64; Port::COUNT],
    /// Utilization per port in `[0,1]`.
    pub port_util: [f64; Port::COUNT],
    /// Bytes stored register→L1.
    pub store_bytes: u64,
    /// Bytes loaded L1→register.
    pub load_bytes: u64,
    /// Average store-path bandwidth in bits/cycle (Figure 8b / §5.1's
    /// "67 bits/cycle under APCM").
    pub store_bw_bits_per_cycle: f64,
    /// Average load-path bandwidth in bits/cycle.
    pub load_bw_bits_per_cycle: f64,
    /// Cache counters.
    pub cache: CacheStats,
    /// µop class mix of the input trace.
    pub class_hist: ClassHistogram,
    /// Wall-clock equivalent at the configured core frequency, in µs.
    pub time_us: f64,
}

impl SimReport {
    /// Store-path bandwidth utilization relative to a single register-
    /// width store port (the paper's Figure 8b denominator: "the
    /// bandwidth between xmm register and cache is 128 bits").
    pub fn store_bw_utilization(&self, reg_bits: u32) -> f64 {
        self.store_bw_bits_per_cycle / reg_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topdown_accessors() {
        let td = TopDown {
            retiring: 0.5,
            frontend: 0.05,
            bad_speculation: 0.05,
            backend_core: 0.3,
            backend_mem: 0.1,
            mem_levels: [0.05, 0.03, 0.02],
        };
        assert!((td.backend() - 0.4).abs() < 1e-12);
        assert!((td.total() - 1.0).abs() < 1e-12);
    }
}
