//! Property tests for the set-associative cache model.

use vran_uarch::cache::{CacheConfig, CacheSim, HitLevel};
use vran_util::proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stats_always_partition_accesses(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = CacheSim::new(CacheConfig::wimpy());
        for &a in &addrs {
            c.access(a, 8);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, s.l1_hits + s.l2_hits + s.l3_hits + s.dram);
    }

    #[test]
    fn immediate_reaccess_hits_l1(addr in 0u64..1_000_000, bytes in 1u64..64) {
        let mut c = CacheSim::new(CacheConfig::beefy());
        c.access(addr, bytes);
        let (lvl, extra) = c.access(addr, bytes);
        prop_assert_eq!(lvl, HitLevel::L1);
        prop_assert_eq!(extra, 0);
    }

    #[test]
    fn determinism(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let run = || {
            let mut c = CacheSim::new(CacheConfig::wimpy());
            let mut out = Vec::new();
            for &a in &addrs {
                out.push(c.access(a, 16).0);
            }
            (out, c.stats())
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn small_working_set_is_l1_resident_after_warmup(
        base in 0u64..10_000,
        lines in 1u64..64, // ≤ 4 KiB, far under any L1
    ) {
        let mut c = CacheSim::new(CacheConfig::wimpy());
        for pass in 0..3 {
            for i in 0..lines {
                let (lvl, _) = c.access(base * 64 + i * 64, 64);
                if pass > 0 {
                    prop_assert_eq!(lvl, HitLevel::L1, "pass {} line {}", pass, i);
                }
            }
        }
    }

    #[test]
    fn hit_levels_never_skip_upward(addr in 0u64..1_000_000) {
        // Second access is never SLOWER than the first access's install
        // level implies: after any access the line is in L1.
        let mut c = CacheSim::new(CacheConfig::beefy());
        c.access(addr, 4);
        for _ in 0..3 {
            let (lvl, _) = c.access(addr, 4);
            prop_assert_eq!(lvl, HitLevel::L1);
        }
    }
}

#[test]
fn capacity_eviction_is_lru_not_random() {
    // Touch A, then fill the set far beyond associativity with
    // same-set lines, then A must miss; but touching A frequently
    // enough keeps it resident.
    let cfg = CacheConfig::wimpy(); // L1: 32 KiB, 8-way, 64 sets
    let set_stride = 64 * 64; // same set every 4 KiB
    let a = 0u64;

    // evict: 9 distinct same-set lines
    let mut c = CacheSim::new(cfg);
    c.access(a, 8);
    for i in 1..=9u64 {
        c.access(i * set_stride, 8);
    }
    let (lvl, _) = c.access(a, 8);
    assert_ne!(lvl, HitLevel::L1, "A must have been evicted from L1");

    // keep-alive: re-touch A between fills
    let mut c = CacheSim::new(cfg);
    c.access(a, 8);
    for i in 1..=9u64 {
        c.access(i * set_stride, 8);
        c.access(a, 8); // MRU refresh
    }
    let (lvl, _) = c.access(a, 8);
    assert_eq!(
        lvl,
        HitLevel::L1,
        "frequently-touched line must stay resident"
    );
}
