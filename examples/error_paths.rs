//! Error-path cost accounting: what each typed failure costs relative
//! to a clean decode, and what the fault-injection hook costs when it
//! only ever draws `Clean`.
//!
//! ```text
//! cargo run --release -p apcm --example error_paths
//! ```
//!
//! The numbers land in EXPERIMENTS.md ("Error-path overhead"): faults
//! that reject at ingress (malformed frames, block-count lies) must be
//! orders of magnitude cheaper than a full decode, while LLR-level
//! faults necessarily pay the whole pipeline before the CRC can refuse
//! the block.
//!
//! The final section drives a decoder-divergence storm with the
//! decoder circuit breaker armed and a flight recorder attached, then
//! prints the consistent [`MetricsSnapshot`] and the recorder's last
//! trace events — the post-incident view `docs/ROBUSTNESS.md`
//! describes.

use std::sync::Arc;
use std::time::Instant;
use vran_net::error::ErrorCategory;
use vran_net::faultinject::{FaultInjector, FaultKind, FaultMix};
use vran_net::metrics::PipelineMetrics;
use vran_net::observe::{BreakerConfig, BreakerStage, FlightRecorder, MetricsSnapshot};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{PipelineConfig, UplinkPipeline};

const REPS: usize = 400;

/// Median nanoseconds of `f` over [`REPS`] calls after warm-up.
fn median_ns(mut f: impl FnMut()) -> f64 {
    f();
    f();
    let mut samples: Vec<u64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn main() {
    let cfg = PipelineConfig {
        snr_db: 30.0,
        decoder_iterations: 4,
        ..Default::default()
    };
    let mut b = PacketBuilder::new(1000, 2000);
    let p = b.build(Transport::Udp, 256).unwrap();

    // Reference: the plain happy path, no injector attached.
    let clean_pipe = UplinkPipeline::new(cfg);
    let clean = median_ns(|| {
        std::hint::black_box(clean_pipe.process(std::hint::black_box(&p)).unwrap());
    });
    println!("clean (no injector)            {clean:>12.0} ns  1.00x");

    // The hook itself: an injector that always draws Clean.
    let mut hook_pipe = UplinkPipeline::new(cfg);
    hook_pipe.set_fault_injector(FaultInjector::with_mix(1, FaultMix::only(FaultKind::Clean)));
    let hook = median_ns(|| {
        std::hint::black_box(hook_pipe.process(std::hint::black_box(&p)).unwrap());
    });
    println!(
        "clean (injector drawing Clean) {hook:>12.0} ns  {:.2}x",
        hook / clean
    );

    // Each fault kind, forced every packet.
    for kind in [
        FaultKind::CorruptFrame,
        FaultKind::TruncateFrame,
        FaultKind::CodeBlockCountLie,
        FaultKind::FlipLlrSigns,
        FaultKind::SaturateLlrs,
    ] {
        let mut pipe = UplinkPipeline::new(cfg);
        pipe.set_fault_injector(FaultInjector::with_mix(2, FaultMix::only(kind)));
        let ns = median_ns(|| {
            let _ = std::hint::black_box(pipe.process(std::hint::black_box(&p)));
        });
        println!("{:<30} {ns:>12.0} ns  {:.2}x", kind.name(), ns / clean);
    }

    // Deadline rejection: a 1 ns budget aborts before the first block.
    let dl_pipe = UplinkPipeline::new(PipelineConfig {
        deadline_ns: Some(1),
        ..cfg
    });
    let dl = median_ns(|| {
        let _ = std::hint::black_box(dl_pipe.process(std::hint::black_box(&p)));
    });
    println!(
        "{:<30} {dl:>12.0} ns  {:.2}x",
        "deadline_exceeded (1 ns)",
        dl / clean
    );

    // Observability under a divergence storm: collapse the SNR so
    // multi-block packets fail in the decoder, arm the decoder
    // breaker, and attach a flight recorder. The snapshot and the
    // dump are the two artifacts an operator would pull after the
    // incident.
    let pm = Arc::new(PipelineMetrics::new(true));
    let mut storm_pipe = UplinkPipeline::with_metrics(
        PipelineConfig {
            snr_db: -10.0,
            breakers: Some(BreakerConfig {
                trip_after: 4,
                cooldown_packets: 8,
            }),
            ..cfg
        },
        pm.clone(),
    );
    let recorder = Arc::new(FlightRecorder::with_capacity(64));
    storm_pipe.set_recorder(recorder.clone());
    let big = b.build(Transport::Udp, 600).unwrap();
    for _ in 0..24 {
        let _ = storm_pipe.process(&big);
    }

    println!("\n--- divergence storm: 24 packets at -10 dB, breaker armed ---");
    let snap = MetricsSnapshot::capture(Some(&pm), None, None);
    let count = |key: &str| snap.get(key).unwrap_or(0.0);
    println!(
        "snapshot: packets={} diverged={} crc_mismatch={} \
         breaker_trips={} breaker_fastfails={}",
        count("pipeline.packets"),
        count(&format!(
            "pipeline.error.{}",
            ErrorCategory::DecoderDiverged.name()
        )),
        count(&format!(
            "pipeline.error.{}",
            ErrorCategory::CrcMismatch.name()
        )),
        count("pipeline.breaker_trips"),
        count("pipeline.breaker_fastfails"),
    );
    if let Some((trips, resets)) = storm_pipe.breaker_counts(BreakerStage::Decoder) {
        println!(
            "decoder breaker: state={:?} trips={trips} resets={resets}",
            storm_pipe.breaker_state(BreakerStage::Decoder).unwrap()
        );
    }
    println!(
        "flight recorder: {} events recorded, last 4:",
        recorder.recorded()
    );
    for ev in recorder.dump_last(4) {
        println!("  {}", ev.to_json());
    }
}
