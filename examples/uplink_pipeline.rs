//! Drive real UDP and TCP packets through the complete uplink PHY
//! chain (encode → OFDM → AWGN → demap → arrange → turbo decode) and
//! report per-stage wall-clock shares.
//!
//! ```text
//! cargo run --release -p apcm --example uplink_pipeline
//! ```

use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{PipelineConfig, UplinkPipeline};
use vran_phy::modulation::Modulation;
use vran_simd::RegWidth;

fn main() {
    println!("== uplink pipeline: 16-QAM over 14 dB AWGN, 5 MHz OFDM ==\n");
    for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
        let cfg = PipelineConfig {
            width: RegWidth::Sse128,
            mechanism: mech,
            modulation: Modulation::Qam16,
            snr_db: 14.0,
            decoder_iterations: 6,
            ..Default::default()
        };
        let pipe = UplinkPipeline::new(cfg);
        println!("--- mechanism: {} ---", mech.name());
        println!(
            "{:>6}  {:>5}  {:>3}  {:>9}  {:>7}  {:>8}  {:>8}",
            "size", "proto", "ok", "coded", "blocks", "arr µs", "dec µs"
        );
        for transport in [Transport::Udp, Transport::Tcp] {
            let mut b = PacketBuilder::new(5060, 5060);
            for size in [64usize, 512, 1500] {
                let p = b.build(transport, size).expect("valid size");
                let r = pipe.process(&p).expect("14 dB 16-QAM should decode");
                println!(
                    "{:>6}  {:>5}  {:>3}  {:>9}  {:>7}  {:>8.1}  {:>8.1}",
                    size,
                    transport.name(),
                    "✓",
                    r.coded_bits,
                    r.code_blocks,
                    r.nanos.arrangement as f64 / 1e3,
                    r.nanos.decode as f64 / 1e3,
                );
            }
        }
        println!();
    }
    println!("every packet decoded identically under both mechanisms ✓");
}
