//! A miniature "VTune": per-port utilization and top-down breakdown of
//! the two arrangement mechanisms at every register width — the
//! paper's core observation (idle ALU ports under the original
//! mechanism) made visible.
//!
//! ```text
//! cargo run --release -p apcm --example port_analysis
//! ```

use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

fn bar(frac: f64) -> String {
    let n = (frac * 20.0).round() as usize;
    format!(
        "{}{}",
        "█".repeat(n.min(20)),
        "░".repeat(20usize.saturating_sub(n))
    )
}

fn main() {
    let input = synthetic_interleaved(6144, 9);
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    println!("port model: P0-P2 vector ALU, P0-P3 scalar ALU, P4-P5 load, P6-P7 store\n");
    for width in RegWidth::ALL {
        for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
            let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
            let r = sim.run(&trace.unwrap());
            println!("=== {} / {} ===", width.name(), mech.name());
            for (p, util) in r.port_util.iter().enumerate() {
                let role = match p {
                    0..=2 => "vec+scalar ALU",
                    3 => "scalar ALU    ",
                    4 | 5 => "load          ",
                    _ => "store         ",
                };
                println!("  P{p} {role} {} {:5.1}%", bar(*util), util * 100.0);
            }
            let t = r.topdown;
            println!(
                "  IPC {:.2} | retiring {:.0}% frontend {:.0}% badspec {:.0}% backend {:.0}%\n",
                r.ipc,
                t.retiring * 100.0,
                t.frontend * 100.0,
                t.bad_speculation * 100.0,
                t.backend() * 100.0
            );
        }
    }
    // ---- per-cycle timeline strip (first 64 cycles, xmm) ----
    println!("timeline (one column per cycle; rows = ports; '█' = dispatched):");
    for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
        let (_, trace) = ArrangeKernel::new(RegWidth::Sse128, mech).arrange(&input, true);
        let (_, samples) = sim.run_sampled(&trace.unwrap(), 1, 64);
        println!("  {}:", mech.name());
        for p in 0..8 {
            let row: String = samples
                .iter()
                .map(|s| if s.port_dispatch[p] { '█' } else { '·' })
                .collect();
            println!("    P{p} {row}");
        }
    }
    println!("\nnote how the original mechanism saturates P6/P7 while P0-P2 idle —");
    println!("APCM moves the batching onto those idle arithmetic ports.");
}
