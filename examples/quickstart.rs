//! Quickstart: arrange one code block both ways, decode it, and show
//! the port-level difference.
//!
//! ```text
//! cargo run --release -p apcm --example quickstart
//! ```

use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_phy::bits::random_bits;
use vran_phy::llr::{bit_to_llr, TurboLlrs};
use vran_phy::turbo::{TurboDecoder, TurboEncoder};
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

fn main() {
    let k = 6144;
    println!("== APCM quickstart: one K={k} code block ==\n");

    // 1. Encode a block and make noiseless LLRs.
    let bits = random_bits(k, 42);
    let cw = TurboEncoder::new(k).encode(&bits);
    let d = cw.to_dstreams();
    let soft: [Vec<i16>; 3] = d
        .iter()
        .map(|s| s.iter().map(|&b| bit_to_llr(b, 80)).collect())
        .collect::<Vec<_>>()
        .try_into()
        .unwrap();
    let turbo_in = TurboLlrs::from_dstreams(&soft, k);

    // 2. The decoder front end sees interleaved [S1 YP1 YP2] triples.
    let interleaved = turbo_in.to_interleaved();

    // 3. Arrange with the original mechanism and with APCM; both must
    //    produce identical streams.
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    let mut streams = Vec::new();
    for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
        let kern = ArrangeKernel::new(RegWidth::Sse128, mech);
        let (out, trace) = kern.arrange(&interleaved, true);
        let r = sim.run(&trace.unwrap());
        println!(
            "{:<10}  {:>7} cycles   IPC {:.2}   backend bound {:>5.1}%   store path {:>5.1} bits/cycle",
            mech.name(),
            r.cycles,
            r.ipc,
            r.topdown.backend() * 100.0,
            r.store_bw_bits_per_cycle,
        );
        streams.push(out);
    }
    assert_eq!(streams[0], streams[1], "mechanisms must agree bit-for-bit");
    println!("\narranged streams identical across mechanisms ✓");

    // 4. Decode from the arranged streams.
    let dec_in = TurboLlrs {
        k,
        streams: streams.pop().unwrap(),
        tails: turbo_in.tails,
    };
    let out = TurboDecoder::new(k, 5).decode(&dec_in);
    assert_eq!(out.bits, bits);
    println!(
        "decoded {k} bits correctly in {} iterations ✓",
        out.iterations_run
    );
}
