//! Capacity planning for a vRAN site (Figure 16 as a tool): per-core
//! bandwidth and core counts for a target station load, per register
//! width and arrangement mechanism.
//!
//! ```text
//! cargo run --release -p apcm --example capacity_planning -- 300
//! cargo run --release -p apcm --example capacity_planning -- 1000
//! ```

use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::latency::LatencyModel;
use vran_simd::RegWidth;
use vran_uarch::CoreConfig;

fn main() {
    let target: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("target Mbps must be a number"))
        .unwrap_or(300.0);
    let mut m = LatencyModel::new(CoreConfig::beefy(), apcm::experiments::DECODER_ITERATIONS);
    println!("== capacity plan for a {target:.0} Mbps station (1500 B packets) ==\n");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>11}  {:>11}  {:>7}",
        "width", "Mbps/core", "Mbps/core", "cores", "cores", "saved"
    );
    println!(
        "{:>8}  {:>12}  {:>14}  {:>11}  {:>11}  {:>7}",
        "", "original", "APCM", "original", "APCM", ""
    );
    let apcm = Mechanism::Apcm(ApcmVariant::Shuffle);
    for w in RegWidth::ALL {
        let mo = m.mbps_per_core(w, Mechanism::Baseline);
        let ma = m.mbps_per_core(w, apcm);
        let co = m.cores_for(w, Mechanism::Baseline, target);
        let ca = m.cores_for(w, apcm, target);
        println!(
            "{:>8}  {:>12.1}  {:>14.1}  {:>11}  {:>11}  {:>7}",
            w.name(),
            mo,
            ma,
            co,
            ca,
            co - ca
        );
    }
    println!("\n(the paper's anchors at 300 Mbps: 18→16, 14→12, 12→9 cores)");
}
