//! Downlink subframe over a frequency-selective Rayleigh channel:
//! PDCCH grant (conv code + §5.1.4.2 rate matching) decoded first, then
//! the turbo-coded PDSCH with pilot-based channel estimation and ZF
//! equalization — the closest this testbed-in-software gets to the
//! paper's over-the-air path.
//!
//! ```text
//! cargo run --release -p apcm --example fading_downlink
//! ```

use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::downlink::{DownlinkConfig, DownlinkPipeline};
use vran_net::packet::{PacketBuilder, Transport};
use vran_phy::modulation::Modulation;

fn main() {
    let mut b = PacketBuilder::new(443, 50000);
    println!("== downlink over block-fading Rayleigh + ZF equalization ==\n");
    println!(
        "{:>8}  {:>7}  {:>5}  {:>8}  {:>8}",
        "SNR dB", "mod", "rv", "DCI", "data"
    );
    for (snr, modulation) in [
        (8.0, Modulation::Qpsk),
        (14.0, Modulation::Qpsk),
        (20.0, Modulation::Qam16),
        (28.0, Modulation::Qam64),
    ] {
        let cfg = DownlinkConfig {
            mechanism: Mechanism::Apcm(ApcmVariant::Shuffle),
            modulation,
            snr_db: snr,
            fading: true,
            decoder_iterations: 8,
            rv: 0,
            ..Default::default()
        };
        let p = b.build(Transport::Udp, 300).unwrap();
        let r = DownlinkPipeline::new(cfg).process(&p);
        println!(
            "{:>8.1}  {:>7}  {:>5}  {:>8}  {:>8}",
            snr,
            modulation.name(),
            cfg.rv,
            if r.dci_ok { "ok" } else { "lost" },
            if r.data_ok { "ok" } else { "lost" },
        );
    }
    println!("\nlow-SNR rows may lose the subframe — that is the channel, not a bug;");
    println!("HARQ (see the harq_retransmission example) is the recovery path.");
}
