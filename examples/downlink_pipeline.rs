//! Drive control + data subframes through the complete downlink chain
//! (grant → turbo encode → rate match → OFDM → AWGN → decode) under
//! both encoder backends, then show what the packed-word fast path
//! buys: per-ISA encode throughput at K=6144 and a multi-worker
//! scale-out sweep.
//!
//! ```text
//! cargo run --release -p apcm --example downlink_pipeline
//! ```

use std::time::Instant;
use vran_net::downlink::{DownlinkConfig, DownlinkPipeline};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::EncoderBackend;
use vran_net::runner::downlink_scaleout_sweep;
use vran_phy::bits::random_bits;
use vran_phy::turbo::{EncodeScratch, EncoderIsa, PackedTurboEncoder, TurboEncoder};

fn main() {
    println!("== downlink pipeline: QPSK PDCCH + 16-QAM PDSCH over 25 dB AWGN ==\n");
    for backend in [EncoderBackend::Scalar, EncoderBackend::Packed] {
        let cfg = DownlinkConfig {
            encoder_backend: backend,
            snr_db: 25.0,
            ..Default::default()
        };
        let pipe = DownlinkPipeline::new(cfg);
        println!("--- encoder backend: {backend:?} ---");
        println!(
            "{:>6}  {:>5}  {:>4}  {:>5}  {:>9}  {:>7}",
            "size", "proto", "dci", "data", "coded", "blocks"
        );
        for transport in [Transport::Udp, Transport::Tcp] {
            let mut b = PacketBuilder::new(5060, 5060);
            for size in [64usize, 512, 1500] {
                let p = b.build(transport, size).expect("valid size");
                let r = pipe.process(&p);
                assert!(r.dci_ok && r.data_ok, "25 dB must decode: {r:?}");
                println!(
                    "{:>6}  {:>5}  {:>4}  {:>5}  {:>9}  {:>7}",
                    size,
                    transport.name(),
                    "✓",
                    "✓",
                    r.coded_bits,
                    r.code_blocks,
                );
            }
        }
        println!();
    }
    println!("both backends produced identical subframes bit-for-bit ✓\n");

    // Packed-vs-scalar encode throughput at the largest block size.
    const K: usize = 6144;
    const REPS: u32 = 200;
    let bits = random_bits(K, 7);
    let scalar_ns = {
        let enc = TurboEncoder::new(K);
        let t = Instant::now();
        for _ in 0..REPS {
            std::hint::black_box(enc.encode(std::hint::black_box(&bits)));
        }
        t.elapsed().as_nanos() as f64 / f64::from(REPS)
    };
    println!("== turbo encode, K=6144, {REPS} reps ==");
    println!(
        "{:>8}  {:>10}  {:>9}  {:>8}",
        "kernel", "ns/block", "Mbit/s", "speedup"
    );
    println!(
        "{:>8}  {:>10.0}  {:>9.0}  {:>8}",
        "scalar",
        scalar_ns,
        K as f64 / scalar_ns * 1e3,
        "1.00x"
    );
    for isa in EncoderIsa::available() {
        let enc = PackedTurboEncoder::with_isa(K, isa);
        let mut scratch = EncodeScratch::new();
        let t = Instant::now();
        for _ in 0..REPS {
            enc.encode_dstreams_into(std::hint::black_box(&bits), &mut scratch);
            std::hint::black_box(scratch.dstream_words());
        }
        let ns = t.elapsed().as_nanos() as f64 / f64::from(REPS);
        println!(
            "{:>8}  {:>10.0}  {:>9.0}  {:>7.2}x",
            isa.name(),
            ns,
            K as f64 / ns * 1e3,
            scalar_ns / ns
        );
    }
    println!();

    // Multi-worker scale-out: one downlink pipeline per worker thread.
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().clamp(2, 4));
    let cfg = DownlinkConfig {
        snr_db: 30.0,
        ..Default::default()
    };
    println!("== downlink scale-out sweep: 24 × 256 B UDP packets ==");
    println!(
        "{:>7}  {:>8}  {:>9}  {:>5}",
        "workers", "Mbps", "Mbps/core", "ok"
    );
    for pt in downlink_scaleout_sweep(cfg, Transport::Udp, 256, 24, workers) {
        println!(
            "{:>7}  {:>8.2}  {:>9.2}  {:>3}/{}",
            pt.workers, pt.mbps, pt.mbps_per_core, pt.ok_packets, pt.packets
        );
    }
}
