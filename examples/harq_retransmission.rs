//! HARQ incremental redundancy in action: a code block transmitted at
//! an aggressive rate over a bad channel, rescued by combining
//! retransmissions at successive redundancy versions.
//!
//! ```text
//! cargo run --release -p apcm --example harq_retransmission
//! ```

use vran_net::harq::{HarqReceiver, HarqTransmitter, RV_SEQUENCE};
use vran_phy::bits::random_bits;
use vran_phy::crc::CRC24B;
use vran_phy::llr::Llr;
use vran_phy::turbo::TurboEncoder;

fn main() {
    let k = 512;
    let payload = random_bits(k - 24, 2024);
    let block = CRC24B.attach(&payload);
    let cw = TurboEncoder::new(k).encode(&block);

    let e = 560; // rate ≈ 0.91 per attempt — too thin on its own
    let flip_every = 7; // ~14 % of coded bits arrive inverted

    println!(
        "== HARQ: K={k}, {e} coded bits/attempt (rate ≈ {:.2}), heavy noise ==\n",
        k as f64 / e as f64
    );
    let mut tx = HarqTransmitter::new(&cw);
    let mut rx = HarqReceiver::new(k, 6);
    for attempt in 0.. {
        let Some((rv, coded)) = tx.next_transmission(e) else {
            println!("rv schedule exhausted without success");
            std::process::exit(1);
        };
        let llrs: Vec<Llr> = coded
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let v: Llr = if b == 0 { 22 } else { -22 };
                if (i + attempt * 3 + 1) % flip_every == 0 {
                    -v
                } else {
                    v
                }
            })
            .collect();
        let out = rx.receive(&llrs, rv).expect("in-schedule rv is valid");
        println!(
            "attempt {} (rv={rv}): crc {}  accumulated LLR energy {}",
            attempt + 1,
            if out.ok { "PASS" } else { "fail" },
            rx.accumulated_energy()
        );
        if out.ok {
            assert_eq!(out.bits, block);
            println!(
                "\nblock recovered after {} of {} scheduled transmissions ✓",
                out.attempts,
                RV_SEQUENCE.len()
            );
            return;
        }
    }
}
