//! The paper's generalization claim, live: APCM vs the extract
//! baseline for de-interleave strides 2..8 (complex I/Q, vRAN triples,
//! RGBA pixels, multi-channel audio).
//!
//! ```text
//! cargo run --release -p apcm --example stride_generalization
//! ```

use vran_arrange::StrideKernel;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

fn main() {
    let sim = CoreSim::new(CoreConfig::beefy().warmed());
    let n = 4096;
    println!("== stride-S de-interleave: original vs APCM (SSE128, {n} elements/stream) ==\n");
    println!(
        "{:>7}  {:>16}  {:>12}  {:>12}  {:>9}",
        "stride", "use case", "orig cycles", "apcm cycles", "speedup"
    );
    let cases = [
        (2usize, "complex I/Q"),
        (3, "vRAN S1/YP1/YP2"),
        (4, "RGBA pixels"),
        (6, "5.1 audio"),
        (8, "8-ch audio"),
    ];
    for (s, label) in cases {
        let data: Vec<i16> = (0..s * n).map(|i| (i % 509) as i16 - 254).collect();
        let run = |apcm: bool| {
            let (streams, t) =
                StrideKernel::new(RegWidth::Sse128, s, apcm).deinterleave(&data, true);
            assert_eq!(streams.len(), s);
            sim.run(&t.unwrap()).cycles
        };
        let orig = run(false);
        let apcm = run(true);
        println!(
            "{:>7}  {:>16}  {:>12}  {:>12}  {:>8.2}×",
            s,
            label,
            orig,
            apcm,
            orig as f64 / apcm as f64
        );
    }
    println!("\nthe win tapers toward stride = lane count (S² shuffles for S·L elements),");
    println!("but the movement-port bottleneck never wins it back.");
}
