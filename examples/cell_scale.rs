//! Cell-scale load harness: a multi-cell eNB serving many UEs per
//! TTI through the MAC scheduler, with bursty paper-sweep traffic and
//! a mid-run HARQ retransmission storm — the deterministic smoke
//! preset that CI gates on p50/p95/p99 tail latency, run once with the
//! storm and once without to show what retransmissions do to the tail.
//!
//! ```text
//! cargo run --release -p apcm --example cell_scale
//! ```

use vran_net::cellsim::{run_cell_sim, CellSimConfig, CellSimReport};

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

fn print_report(r: &CellSimReport) {
    println!(
        "  {} cells × {} UEs × {} TTIs: offered {} pkts ({:.2} Mbps), \
         served {} ({:.2} Mbps), dropped {}, backlog {}, {} HARQ retx",
        r.cells,
        r.ues_per_cell,
        r.ttis,
        r.offered_packets,
        r.offered_mbps(),
        r.served_packets,
        r.served_mbps(),
        r.dropped_packets,
        r.backlog_packets,
        r.harq_retransmissions,
    );
    println!(
        "  UE fairness (Jain) {:.3}, core-equivalents {:.3}, \
         cores for 300 Mbps of this mix: {:.1}",
        r.ue_fairness,
        r.core_equivalents(),
        r.cores_for(300.0),
    );
    println!(
        "  {:<10} {:>10} {:>10} {:>10}",
        "stage", "p50", "p95", "p99"
    );
    for (name, h) in [
        ("total", &r.latency.total),
        ("queue", &r.latency.queue),
        ("harq", &r.latency.harq),
        ("proc", &r.latency.proc),
        ("arrange", &r.latency.arrange),
        ("calc", &r.latency.calc),
    ] {
        println!(
            "  {:<10} {:>10} {:>10} {:>10}",
            name,
            fmt_ns(h.quantile_upper(0.50)),
            fmt_ns(h.quantile_upper(0.95)),
            fmt_ns(h.quantile_upper(0.99)),
        );
    }
}

fn main() {
    let seed = 0xCE11;

    println!("== smoke preset, with HARQ storm (the CI-gated workload) ==");
    let stormy = run_cell_sim(CellSimConfig::smoke(seed));
    print_report(&stormy);

    println!("\n== same cells, same seed, storm removed ==");
    let mut calm_cfg = CellSimConfig::smoke(seed);
    calm_cfg.storm = None;
    let calm = run_cell_sim(calm_cfg);
    print_report(&calm);

    let stormy_p99 = stormy.latency.harq.quantile_upper(0.99);
    let calm_p99 = calm.latency.harq.quantile_upper(0.99);
    println!(
        "\nHARQ-stage p99, storm vs calm: {} vs {} — the end-to-end \
         tail is queue-dominated under this loaded preset, but the \
         storm adds {} retransmissions ({:.0} % more processing) and \
         a whole retransmission tail of its own. The per-stage \
         breakdown is what localizes it, and the percentile gate is \
         what keeps it from regressing silently.",
        fmt_ns(stormy_p99),
        fmt_ns(calm_p99),
        stormy.harq_retransmissions - calm.harq_retransmissions,
        (stormy.core_equivalents() / calm.core_equivalents() - 1.0) * 100.0,
    );
}
