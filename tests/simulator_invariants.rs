//! Property-based invariants of the port-level core simulator: for any
//! generated µop stream, the accounting identities the top-down method
//! relies on must hold.

use vran_simd::{Mem, RegWidth, Trace, Vm};
use vran_uarch::{CoreConfig, CoreSim, Port};
use vran_util::proptest::prelude::*;

/// Build a random-but-well-formed trace from a small op alphabet.
fn arbitrary_trace(ops: &[u8], seed: u64) -> Trace {
    let mut mem = Mem::new();
    let buf = mem.alloc(4096);
    let mut vm = Vm::tracing(mem);
    let w = RegWidth::Sse128;
    let l = w.lanes();
    let mut regs = vec![vm.splat(w, 1), vm.splat(w, 2)];
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s
    };
    for &op in ops {
        let a = regs[rnd() as usize % regs.len()];
        let b = regs[rnd() as usize % regs.len()];
        match op % 8 {
            0 => regs.push(vm.adds(a, b)),
            1 => regs.push(vm.max(a, b)),
            2 => regs.push(vm.load(w, vran_simd::MemRef::new((rnd() as usize % 500) * l, l))),
            3 => vm.store(a, vran_simd::MemRef::new((rnd() as usize % 500) * l, l)),
            4 => vm.extract_store(a, rnd() as usize % l, buf.base + rnd() as usize % 4096),
            5 => vm.scalar_ops(1 + rnd() as usize % 3),
            6 => vm.branch(rnd() % 17 == 0),
            _ => regs.push(vm.or(a, b)),
        }
        if regs.len() > 8 {
            regs.drain(..regs.len() - 8);
        }
    }
    // ensure non-empty
    vm.scalar_ops(1);
    vm.take_trace()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    // ≥60 µops: the final drain cycle's slots are uncharged by design
    // (the kernel under test has ended), which only matters for
    // toy-sized traces.
    fn accounting_identities_hold(ops in prop::collection::vec(any::<u8>(), 60..400), seed in any::<u64>()) {
        let trace = arbitrary_trace(&ops, seed);
        let sim = CoreSim::new(CoreConfig::beefy().warmed());
        let r = sim.run(&trace);

        // every µop retires
        prop_assert_eq!(r.uops, trace.len() as u64);
        prop_assert_eq!(r.instructions, trace.instr_count() as u64);

        // throughput bounds
        prop_assert!(r.upc <= 4.0 + 1e-9, "µPC beyond issue width: {}", r.upc);
        prop_assert!(r.cycles >= trace.len().div_ceil(4) as u64);

        // top-down fractions are sane and complete
        let t = r.topdown;
        for v in [t.retiring, t.frontend, t.bad_speculation, t.backend_core, t.backend_mem] {
            prop_assert!((0.0..=1.0).contains(&v), "fraction out of range: {t:?}");
        }
        prop_assert!(t.total() <= 1.0 + 1e-9, "over-accounted slots: {t:?}");
        prop_assert!(t.total() >= 0.80, "under-accounted slots: {t:?}");

        // port utilization bounded, and busy cycles consistent
        for p in 0..Port::COUNT {
            prop_assert!(r.port_util[p] <= 1.0 + 1e-9);
            prop_assert_eq!(r.port_busy[p], (r.port_util[p] * r.cycles as f64).round() as u64);
        }

        // byte accounting matches the trace
        prop_assert_eq!(r.store_bytes, trace.store_bytes());
        prop_assert_eq!(r.load_bytes, trace.load_bytes());
    }

    #[test]
    fn simulated_cycles_never_beat_the_analytic_bounds(
        ops in prop::collection::vec(any::<u8>(), 1..300),
        seed in any::<u64>(),
    ) {
        let trace = arbitrary_trace(&ops, seed);
        let cfg = {
            // no frontend bubbles or mispredict penalties: the bounds
            // model pure dependency/port limits
            let mut c = CoreConfig::beefy().warmed();
            c.fetch_bubble_every = 0;
            c.mispredict_penalty = 0;
            c
        };
        let bounds = vran_uarch::bounds(&trace, &cfg);
        let r = CoreSim::new(cfg).run(&trace);
        prop_assert!(
            r.cycles + 1 >= bounds.overall(),
            "simulator beat its own lower bound: {} < {:?}",
            r.cycles,
            bounds
        );
    }

    #[test]
    fn simulation_is_deterministic(ops in prop::collection::vec(any::<u8>(), 1..200), seed in any::<u64>()) {
        let trace = arbitrary_trace(&ops, seed);
        let sim = CoreSim::new(CoreConfig::wimpy());
        let a = sim.run(&trace);
        let b = sim.run(&trace);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.port_busy, b.port_busy);
        prop_assert_eq!(a.cache, b.cache);
    }

    #[test]
    fn warming_never_slows_a_trace(ops in prop::collection::vec(any::<u8>(), 1..200), seed in any::<u64>()) {
        let trace = arbitrary_trace(&ops, seed);
        let cold = CoreSim::new(CoreConfig::beefy()).run(&trace);
        let warm = CoreSim::new(CoreConfig::beefy().warmed()).run(&trace);
        prop_assert!(warm.cycles <= cold.cycles, "warm {} > cold {}", warm.cycles, cold.cycles);
    }

    #[test]
    fn wider_issue_never_slows_a_trace(ops in prop::collection::vec(any::<u8>(), 1..150), seed in any::<u64>()) {
        let trace = arbitrary_trace(&ops, seed);
        let base = CoreConfig::beefy().warmed();
        let narrow = CoreSim::new(base).run(&trace);
        let wide = CoreSim::new(CoreConfig { issue_width: 8, retire_width: 8, ..base }).run(&trace);
        prop_assert!(wide.cycles <= narrow.cycles);
    }
}
