//! End-to-end integration: real packets through the complete PHY loop
//! across mechanisms, widths, modulations and SNR points.

use vran_arrange::{ApcmVariant, Mechanism};
use vran_net::error::{ErrorCategory, PipelineError};
use vran_net::packet::{PacketBuilder, Transport};
use vran_net::pipeline::{PacketResult, PipelineConfig, UplinkPipeline};
use vran_net::runner::run_throughput;
use vran_phy::modulation::Modulation;
use vran_simd::RegWidth;

fn process(
    cfg: PipelineConfig,
    transport: Transport,
    size: usize,
) -> Result<PacketResult, PipelineError> {
    let mut b = PacketBuilder::new(4000, 4001);
    let p = b.build(transport, size).unwrap();
    UplinkPipeline::new(cfg).process(&p)
}

#[test]
fn every_modulation_closes_the_loop_at_adequate_snr() {
    // Operating points with comfortable margin for rate-1/2 turbo.
    for (m, snr) in [
        (Modulation::Qpsk, 6.0),
        (Modulation::Qam16, 13.0),
        (Modulation::Qam64, 20.0),
    ] {
        let cfg = PipelineConfig {
            modulation: m,
            snr_db: snr,
            ..Default::default()
        };
        let r = process(cfg, Transport::Udp, 512);
        assert!(r.is_ok(), "{} at {snr} dB must decode: {r:?}", m.name());
    }
}

#[test]
fn snr_waterfall_is_monotone() {
    // Sweep SNR for 16-QAM; once decoding succeeds it must keep
    // succeeding at every higher point (with the same seed).
    let mut successes = Vec::new();
    for snr10 in (40..200).step_by(20) {
        let snr = snr10 as f32 / 10.0;
        let cfg = PipelineConfig {
            modulation: Modulation::Qam16,
            snr_db: snr,
            decoder_iterations: 6,
            ..Default::default()
        };
        successes.push((snr, process(cfg, Transport::Udp, 256).is_ok()));
    }
    let first_ok = successes.iter().position(|(_, ok)| *ok);
    assert!(
        first_ok.is_some(),
        "16-QAM must decode somewhere below 20 dB: {successes:?}"
    );
    for (snr, ok) in &successes[first_ok.unwrap()..] {
        assert!(ok, "non-monotone waterfall at {snr} dB: {successes:?}");
    }
}

#[test]
fn mechanisms_are_functionally_transparent_at_the_packet_level() {
    // The central functional requirement: swapping the arrangement
    // mechanism (and width) changes nothing observable.
    let mut reference: Option<(bool, usize)> = None;
    for width in RegWidth::ALL {
        for mech in [
            Mechanism::Baseline,
            Mechanism::Apcm(ApcmVariant::Shuffle),
            Mechanism::Apcm(ApcmVariant::MaskRotate),
        ] {
            let cfg = PipelineConfig {
                width,
                mechanism: mech,
                modulation: Modulation::Qam16,
                snr_db: 11.5,
                ..Default::default()
            };
            let r = process(cfg, Transport::Udp, 700);
            let key = match &r {
                Ok(p) => (true, p.decoder_iterations),
                Err(e) => (
                    false,
                    e.decode_failure().map_or(0, |f| f.decoder_iterations),
                ),
            };
            match &reference {
                None => reference = Some(key),
                Some(k) => assert_eq!(&key, k, "{width}/{} diverged", mech.name()),
            }
        }
    }
}

#[test]
fn segmented_transport_blocks_survive() {
    // 1500 B → multi-code-block TB with per-block CRC24B.
    let cfg = PipelineConfig {
        snr_db: 25.0,
        ..Default::default()
    };
    for transport in [Transport::Udp, Transport::Tcp] {
        let r = process(cfg, transport, 1500);
        let r = r.unwrap_or_else(|e| panic!("{}: {e}", transport.name()));
        assert!(r.code_blocks >= 2);
    }
}

#[test]
fn corrupted_channel_is_detected_not_miscorrected() {
    // At hopeless SNR the CRC must catch the failure (a typed decode
    // error) rather than deliver a wrong frame as good.
    let cfg = PipelineConfig {
        modulation: Modulation::Qam64,
        snr_db: -5.0,
        decoder_iterations: 3,
        ..Default::default()
    };
    let e = process(cfg, Transport::Udp, 512).expect_err("−5 dB 64-QAM must fail");
    assert!(matches!(
        e.category(),
        ErrorCategory::CrcMismatch | ErrorCategory::DecoderDiverged
    ));
}

#[test]
fn threaded_runner_matches_single_shot_results() {
    let cfg = PipelineConfig {
        snr_db: 28.0,
        ..Default::default()
    };
    let rep = run_throughput(cfg, Transport::Udp, 300, 6);
    assert_eq!(rep.packets, 6);
    assert_eq!(rep.ok_packets, 6);
    assert!(process(cfg, Transport::Udp, 300).is_ok());
}

#[test]
fn packet_size_sweep_matches_figure13_grid() {
    // Every Figure 13 grid point must be processable.
    let cfg = PipelineConfig {
        snr_db: 25.0,
        decoder_iterations: 4,
        ..Default::default()
    };
    let pipe = UplinkPipeline::new(cfg);
    for size in [64usize, 256, 512, 1024, 1500] {
        for transport in [Transport::Udp, Transport::Tcp] {
            let mut b = PacketBuilder::new(1, 2);
            let p = b.build(transport, size).unwrap();
            let r = pipe.process(&p);
            assert!(r.is_ok(), "{} {size}B: {r:?}", transport.name());
        }
    }
}
