//! Property-based equivalence of the arrangement kernels: for any LLR
//! contents and any legal block size, every mechanism at every width
//! must reproduce the scalar oracle — and identical decoder outcomes.

use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_phy::interleaver::QPP_TABLE;
use vran_phy::llr::{InterleavedLlrs, TurboLlrs};
use vran_phy::turbo::{TurboDecoder, TurboEncoder};
use vran_simd::RegWidth;
use vran_util::proptest::prelude::*;

fn mechanisms() -> [Mechanism; 3] {
    [
        Mechanism::Baseline,
        Mechanism::Apcm(ApcmVariant::Shuffle),
        Mechanism::Apcm(ApcmVariant::MaskRotate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_oracle_for_any_contents(
        seed in any::<u64>(),
        k_idx in 0usize..16,
        width_idx in 0usize..3,
        mech_idx in 0usize..3,
    ) {
        // small block sizes keep the cases quick; every lane-count
        // relationship (divisible / ragged) is covered
        let k = QPP_TABLE[k_idx].k as usize;
        let data: Vec<i16> = {
            let mut s = seed | 1;
            (0..3 * k)
                .map(|_| {
                    s ^= s >> 12;
                    s ^= s << 25;
                    s ^= s >> 27;
                    (s >> 48) as i16
                })
                .collect()
        };
        let input = InterleavedLlrs { k, data };
        let expect = input.deinterleave_scalar();
        let kern = ArrangeKernel::new(RegWidth::ALL[width_idx], mechanisms()[mech_idx]);
        let (got, _) = kern.arrange(&input, false);
        prop_assert_eq!(kern.depermute(&got), expect);
    }

    #[test]
    fn trace_mode_never_changes_results(seed in any::<u64>()) {
        let k = 104;
        let input = vran_net::pipeline::synthetic_interleaved(k, seed);
        for mech in mechanisms() {
            let kern = ArrangeKernel::new(RegWidth::Sse128, mech);
            let (native, none) = kern.arrange(&input, false);
            let (traced, trace) = kern.arrange(&input, true);
            prop_assert!(none.is_none());
            prop_assert!(trace.is_some());
            prop_assert_eq!(&native, &traced);
        }
    }

    #[test]
    fn store_payload_is_mechanism_invariant(seed in any::<u64>(), width_idx in 0usize..3) {
        // Total bytes written register→L1 is the data itself; only the
        // instruction mix differs between mechanisms.
        let input = vran_net::pipeline::synthetic_interleaved(96, seed);
        let width = RegWidth::ALL[width_idx];
        let mut payloads = Vec::new();
        for mech in [Mechanism::Baseline, Mechanism::Apcm(ApcmVariant::Shuffle)] {
            let (_, t) = ArrangeKernel::new(width, mech).arrange(&input, true);
            payloads.push(t.unwrap().store_bytes());
        }
        prop_assert_eq!(payloads[0], payloads[1]);
    }
}

#[test]
fn decoder_is_blind_to_the_arrangement_mechanism() {
    // Arrange with every mechanism, decode, demand identical bits —
    // including on partially corrupted input where any arrangement bug
    // would steer the iterative decoder differently.
    let k = 208;
    let bits = vran_phy::bits::random_bits(k, 400);
    let cw = TurboEncoder::new(k).encode(&bits);
    let d = cw.to_dstreams();
    let mut soft: [Vec<i16>; 3] = d
        .iter()
        .map(|s| {
            s.iter()
                .map(|&b| if b == 0 { 48i16 } else { -48 })
                .collect()
        })
        .collect::<Vec<_>>()
        .try_into()
        .unwrap();
    // corrupt some coded positions
    for i in (0..k).step_by(17) {
        soft[i % 3][i] = -soft[i % 3][i] / 3;
    }
    let turbo_in = TurboLlrs::from_dstreams(&soft, k);
    let interleaved = turbo_in.to_interleaved();
    let dec = TurboDecoder::new(k, 6);

    let mut outcomes = Vec::new();
    for width in RegWidth::ALL {
        for mech in mechanisms() {
            let kern = ArrangeKernel::new(width, mech);
            let (streams, _) = kern.arrange(&interleaved, false);
            let streams = kern.depermute(&streams);
            let input = TurboLlrs {
                k,
                streams,
                tails: turbo_in.tails,
            };
            outcomes.push(dec.decode(&input).bits);
        }
    }
    for o in &outcomes[1..] {
        assert_eq!(
            o, &outcomes[0],
            "decoder outcome depends on arrangement mechanism"
        );
    }
    assert_eq!(
        outcomes[0], bits,
        "the common outcome should be a correct decode"
    );
}
