//! The paper's headline claims, asserted end-to-end against the
//! reproduction (bands per EXPERIMENTS.md — shape and magnitude, not
//! testbed-exact absolutes).

use apcm::experiments;

/// Abstract claim 1: "decreases the data arrangement's backend bound
/// from 45 % to 3 %".
#[test]
fn claim_backend_bound_collapse() {
    let f = experiments::fig15::run();
    let orig = f.value("SSE128/original", "backend").unwrap();
    let apcm = f.value("SSE128/apcm", "backend").unwrap();
    assert!(
        (0.35..0.60).contains(&orig),
        "original backend ≈45 %, got {:.1}%",
        orig * 100.0
    );
    assert!(apcm < 0.10, "APCM backend ≈3 %, got {:.1}%", apcm * 100.0);
}

/// Abstract claim 2: "promotes its memory bandwidth utilization by
/// 4X-16X".
#[test]
fn claim_bandwidth_4x_to_16x() {
    let f = experiments::fig08::run();
    let s128 = f.value("SSE128/apcm", "speedup vs original").unwrap();
    let s512 = f.value("AVX512/apcm", "speedup vs original").unwrap();
    assert!(s128 >= 3.5, "≈4× at xmm, got {s128:.1}×");
    assert!(s512 >= 14.0, "≈16× at zmm, got {s512:.1}×");
}

/// Abstract claim 3: "CPU time of the data arrangement process can be
/// reduced by 67 % - 92 %".
#[test]
fn claim_arrangement_cpu_time_reduction() {
    let f = experiments::fig14::run();
    let r128 = f.value("SSE128", "reduction %").unwrap();
    let r512 = f.value("AVX512", "reduction %").unwrap();
    assert!(
        (55.0..90.0).contains(&r128),
        "≈67 % at 128 bits, got {r128:.0}%"
    );
    assert!(
        (85.0..99.0).contains(&r512),
        "≈92 % at 512 bits, got {r512:.0}%"
    );
}

/// Abstract claim 4: "overall latency of the vRAN packet transmission
/// is decreased by 12 % - 20 %".
#[test]
fn claim_packet_latency_reduction() {
    let f = experiments::fig13::run();
    // reductions at SSE128 (low end) and AVX512 (high end), 1500 B UDP
    let r = f.rows.iter().find(|r| r.label == "UDP-1500B").unwrap();
    let red128 = (1.0 - r.values[1] / r.values[0]) * 100.0;
    let red512 = (1.0 - r.values[5] / r.values[4]) * 100.0;
    assert!(
        (7.0..18.0).contains(&red128),
        "≈12 % at SSE128, got {red128:.1}%"
    );
    assert!(
        (15.0..28.0).contains(&red512),
        "≈20 % at AVX512, got {red512:.1}%"
    );
}

/// §6 claim: "the IPC soar from 1.2, 1.1, and 1.05 to 3.6, 3.5, 3.3".
#[test]
fn claim_ipc_soars() {
    let f = experiments::fig15::run();
    for (w, o_hi, a_lo) in [
        ("SSE128", 1.5, 3.3),
        ("AVX256", 1.5, 3.3),
        ("AVX512", 1.5, 3.2),
    ] {
        let orig = f.value(&format!("{w}/original"), "IPC").unwrap();
        let apcm = f.value(&format!("{w}/apcm"), "IPC").unwrap();
        assert!(orig < o_hi, "{w}: original IPC ≈1.0-1.2, got {orig:.2}");
        assert!(apcm > a_lo, "{w}: APCM IPC ≈3.3-3.6, got {apcm:.2}");
    }
}

/// §6 claim: "system utilization increase around 12 % to 29 %" and the
/// core-count reductions for a 300 Mbps station.
#[test]
fn claim_capacity_gains() {
    let f = experiments::fig16::run();
    for w in ["SSE128", "AVX256", "AVX512"] {
        let gain =
            f.value(w, "Mbps/core apcm").unwrap() / f.value(w, "Mbps/core orig").unwrap() - 1.0;
        assert!(
            (0.06..0.40).contains(&gain),
            "{w}: utilization gain ≈12-29 %, got {:.1}%",
            gain * 100.0
        );
    }
    let co = f.value("AVX512", "cores orig").unwrap();
    let ca = f.value("AVX512", "cores apcm").unwrap();
    assert!(
        co - ca >= 2.0,
        "AVX512 must save multiple cores (paper 12→9): {co}→{ca}"
    );
}

/// §6 claim: under the original mechanism "2.2 % more CPU time is
/// required for 256 bits registers" (and +6.4 % for 512): wider never
/// helps the original arrangement.
#[test]
fn claim_original_regresses_with_width() {
    let f = experiments::fig14::run();
    let a = [
        f.value("SSE128", "arrangement orig").unwrap(),
        f.value("AVX256", "arrangement orig").unwrap(),
        f.value("AVX512", "arrangement orig").unwrap(),
    ];
    assert!(a[1] >= a[0], "ymm must not beat xmm: {a:?}");
    assert!(a[2] >= a[1], "zmm must not beat ymm: {a:?}");
    // and the regression is in the single-digit-percent range
    assert!(a[2] / a[0] < 1.25, "regression should be mild: {a:?}");
}

/// §6 claim: under APCM "the 256 bits registers' CPU time decreases
/// 49 %" and 512 another 51 % — near-ideal width scaling.
#[test]
fn claim_apcm_scales_with_width() {
    let f = experiments::fig14::run();
    let a = [
        f.value("SSE128", "arrangement apcm").unwrap(),
        f.value("AVX256", "arrangement apcm").unwrap(),
        f.value("AVX512", "arrangement apcm").unwrap(),
    ];
    let step1 = 1.0 - a[1] / a[0];
    let step2 = 1.0 - a[2] / a[1];
    assert!(
        (0.35..0.65).contains(&step1),
        "≈49 % per doubling, got {:.0}%",
        step1 * 100.0
    );
    assert!(
        (0.35..0.65).contains(&step2),
        "≈51 % per doubling, got {:.0}%",
        step2 * 100.0
    );
}

/// §4.1 claim: the beefy server trades memory bound for core bound.
#[test]
fn claim_beefy_trades_memory_for_core_bound() {
    let f = experiments::fig07::run();
    let mut traded = 0;
    for k in ["_mm_adds", "_mm_subs", "_mm_max"] {
        let wm = f.value(&format!("wimpy/{k}"), "memory bound").unwrap();
        let bm = f.value(&format!("beefy/{k}"), "memory bound").unwrap();
        let wc = f.value(&format!("wimpy/{k}"), "core bound").unwrap();
        let bc = f.value(&format!("beefy/{k}"), "core bound").unwrap();
        if bm < wm && bc >= wc {
            traded += 1;
        }
    }
    assert!(
        traded >= 2,
        "most SIMD kernels must show the memory→core trade"
    );
}

/// Figure 9 claim: "the operation time proportion of the data
/// arrangement will become larger and larger" under the original
/// mechanism as registers widen, and trivial under APCM.
#[test]
fn claim_arrangement_share_trend() {
    let f = experiments::fig09::run();
    let orig_share_128 = f.value("SSE128", "share orig %").unwrap();
    let orig_share_512 = f.value("AVX512", "share orig %").unwrap();
    let apcm_share_512 = f.value("AVX512", "share apcm %").unwrap();
    assert!(
        orig_share_512 > orig_share_128,
        "original share must grow with width"
    );
    assert!(
        apcm_share_512 < 5.0,
        "APCM share at 512 bits ≈1.8 %, got {apcm_share_512:.1}%"
    );
}
