//! Golden-value regression tests: the simulator is deterministic, so
//! the exact cycle counts of the headline kernels are pinned here. A
//! change to the scheduler, latency table, port model or kernel
//! structure that moves these numbers is *visible* — update the
//! constants deliberately, with a note in EXPERIMENTS.md if the figure
//! bands move.

use vran_arrange::{ApcmVariant, ArrangeKernel, Mechanism};
use vran_net::pipeline::synthetic_interleaved;
use vran_simd::RegWidth;
use vran_uarch::{CoreConfig, CoreSim};

fn cycles(width: RegWidth, mech: Mechanism) -> u64 {
    let input = synthetic_interleaved(768, 42);
    let (_, trace) = ArrangeKernel::new(width, mech).arrange(&input, true);
    CoreSim::new(CoreConfig::beefy().warmed())
        .run(&trace.unwrap())
        .cycles
}

#[test]
fn golden_arrangement_cycles() {
    // 768 triples, beefy steady state. The *ratios* are the paper's
    // claims; the absolute values are the regression pins.
    let table = [
        (RegWidth::Sse128, Mechanism::Baseline, 2310),
        (RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::Shuffle), 519),
        (RegWidth::Avx256, Mechanism::Baseline, 2457),
        (RegWidth::Avx256, Mechanism::Apcm(ApcmVariant::Shuffle), 263),
        (RegWidth::Avx512, Mechanism::Baseline, 2535),
        (RegWidth::Avx512, Mechanism::Apcm(ApcmVariant::Shuffle), 135),
    ];
    for (w, m, expect) in table {
        let got = cycles(w, m);
        assert_eq!(
            got,
            expect,
            "{w}/{}: cycle count moved (golden {expect}, got {got}) — \
             intentional change? update the pin and EXPERIMENTS.md",
            m.name()
        );
    }
}

#[test]
fn golden_trace_shapes() {
    // µop counts are structural: 768 triples = 96 xmm groups.
    let input = synthetic_interleaved(768, 42);
    let (_, t) = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Baseline).arrange(&input, true);
    let t = t.unwrap();
    // per group: 3 loads + 24 pextrw × 2 µops = 51
    assert_eq!(t.len(), 96 * 51);
    assert_eq!(t.instr_count(), 96 * 27);

    let (_, t) = ArrangeKernel::new(RegWidth::Sse128, Mechanism::Apcm(ApcmVariant::Shuffle))
        .arrange(&input, true);
    let t = t.unwrap();
    // per group: 3 loads + 9 shuffles + 6 ors + 3 stores = 21
    assert_eq!(t.len(), 96 * 21);
}

#[test]
fn golden_decoder_cycles() {
    use vran_phy::bits::random_bits;
    use vran_phy::llr::{bit_to_llr, TurboLlrs};
    use vran_phy::turbo::simd_decoder::SimdTurboDecoder;
    use vran_phy::turbo::TurboEncoder;

    let k = 128;
    let bits = random_bits(k, 7);
    let cw = TurboEncoder::new(k).encode(&bits);
    let d = cw.to_dstreams();
    let soft: [Vec<i16>; 3] = d
        .iter()
        .map(|s| s.iter().map(|&b| bit_to_llr(b, 60)).collect())
        .collect::<Vec<_>>()
        .try_into()
        .unwrap();
    let input = TurboLlrs::from_dstreams(&soft, k);
    let (out, trace) = SimdTurboDecoder::new(k, 1, RegWidth::Sse128).decode_traced(&input, 1);
    assert_eq!(out.bits, bits);
    let r = CoreSim::new(CoreConfig::beefy().warmed()).run(&trace);
    let per_step = r.cycles as f64 / k as f64;
    assert!(
        (15.0..50.0).contains(&per_step),
        "decoder cost drifted: {per_step:.1} cycles/step/iteration"
    );
}
